"""ChaosSpace sampling (deterministic, order-independent), schedule
compilation, and the schedule -> ha.expect derivation rules."""

import json

import pytest

from repro.chaos import ChaosSpace, ha_expectations, plan_from_schedule
from repro.chaos.space import ALL_KINDS, schedule_key
from repro.errors import ConfigError
from repro.net import Cluster

N = 5
HORIZON = 30_000.0


def space(**kw):
    return ChaosSpace(N, HORIZON, **kw)


class TestSampling:
    def test_same_seed_index_is_identical(self):
        a = space().sample(3, 7)
        b = space().sample(3, 7)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_order_independent(self):
        # sampling index 5 cold must equal sampling it after 0..4
        cold = space().sample(9, 5)
        warm_space = space()
        for i in range(5):
            warm_space.sample(9, i)
        assert warm_space.sample(9, 5) == cold

    def test_indexes_differ(self):
        dumps = {json.dumps(space().sample(0, i), sort_keys=True)
                 for i in range(10)}
        assert len(dumps) > 5  # not all schedules collapse to one

    def test_fields_within_bounds(self):
        sp = space(max_faults=4)
        for index in range(30):
            schedule = sp.sample(1, index)
            assert 1 <= len(schedule) <= 4
            for f in schedule:
                assert f["kind"] in ALL_KINDS
                if f["kind"] == "crash":
                    assert f["node"] != 0  # protected front-end
                    assert 0 < f["at"] < HORIZON
                elif f["kind"] == "partition":
                    flat = sorted(n for g in f["groups"] for n in g)
                    assert flat == list(range(N))
                    assert all(f["groups"])  # no empty side
                    assert 0 < f["start"] < f["until"] <= 0.92 * HORIZON
                else:
                    assert 0 < f["start"] < f["until"] <= 0.92 * HORIZON

    def test_kind_restriction_respected(self):
        sp = space(kinds=("partition",))
        kinds = {f["kind"] for i in range(10) for f in sp.sample(0, i)}
        assert kinds == {"partition"}

    def test_validation(self):
        with pytest.raises(ConfigError):
            ChaosSpace(2, HORIZON)
        with pytest.raises(ConfigError):
            ChaosSpace(N, 0.0)
        with pytest.raises(ConfigError):
            ChaosSpace(N, HORIZON, max_faults=0)
        with pytest.raises(ConfigError):
            ChaosSpace(N, HORIZON, kinds=("partition", "meteor"))
        with pytest.raises(ConfigError):
            ChaosSpace(N, HORIZON, protect=range(N)).sample(0, 0)


class TestCompilation:
    ONE_OF_EACH = [
        {"kind": "crash", "node": 1, "at": 2_000.0, "restart_at": 9_000.0},
        {"kind": "partition", "groups": [[0, 1], [2, 3, 4]],
         "start": 3_000.0, "until": 8_000.0, "oneway": False},
        {"kind": "slow", "node": 2, "factor": 5.0,
         "start": 1_000.0, "until": 4_000.0},
        {"kind": "stall", "node": 3, "start": 2_000.0, "until": 6_000.0},
        {"kind": "drop", "rate": 0.1, "start": 500.0, "until": 2_500.0},
    ]

    def test_every_kind_compiles_and_installs(self):
        plan = plan_from_schedule(self.ONE_OF_EACH)
        assert not plan.is_empty
        Cluster(n_nodes=N, seed=0).install_faults(plan)  # validates

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="meteor"):
            plan_from_schedule([{"kind": "meteor", "at": 1.0}])

    def test_schedule_keys_are_readable(self):
        labels = [schedule_key(f) for f in self.ONE_OF_EACH]
        assert labels[0] == "crash(node=1@2000.0->restart@9000.0)"
        assert labels[1] == "partition(01|234@[3000.0,8000.0))"
        assert "slow(node=2x5.0" in labels[2]
        assert "stall(node=3" in labels[3]
        assert "drop(rate=0.1" in labels[4]
        oneway = dict(self.ONE_OF_EACH[1], oneway=True)
        assert "->" in schedule_key(oneway)


def part(groups, start=6_000.0, until=20_000.0, oneway=False):
    return {"kind": "partition", "groups": groups, "start": start,
            "until": until, "oneway": oneway}


class TestHaExpectations:
    BOUND = 3_000.0

    def derive(self, schedule):
        return ha_expectations(schedule, n_nodes=N, n_locks=4,
                               bound_us=self.BOUND)

    def test_majority_front_expects_failover(self):
        exps = self.derive([part([[0, 1, 2], [3, 4]])])
        assert len(exps) == 1
        e = exps[0]
        assert e["kind"] == "failover"
        assert e["victims"] == [3]  # node 4 hosts no lock (n_locks=4)
        assert e["after"] == 6_000.0 and e["by"] == 9_000.0

    def test_minority_front_expects_no_failover(self):
        exps = self.derive([part([[0, 1], [2, 3, 4]])])
        assert len(exps) == 1
        e = exps[0]
        assert e["kind"] == "no-failover"
        assert e["victims"] == [2, 3, 4]
        assert e["until"] == 20_000.0

    def test_oneway_and_partial_cuts_stay_silent(self):
        assert self.derive([part([[0, 1, 2], [3, 4]], oneway=True)]) == []
        # group pair not covering all nodes: node 4 bridges both sides
        assert self.derive([part([[0, 1, 2], [3]])]) == []

    def test_failover_needs_clean_neighbourhood(self):
        clean = part([[0, 1, 2], [3, 4]])
        # a second partition inside the detection bound voids it
        assert self.derive([clean,
                            part([[0, 3], [1, 2, 4]], start=7_000.0,
                                 until=9_000.0)]) == []
        # a gray failure starting inside the bound voids it too
        assert self.derive([clean,
                            {"kind": "slow", "node": 2, "factor": 8.0,
                             "start": 6_500.0, "until": 9_000.0}]) == []
        # too early (phi history not warmed up) voids it
        assert self.derive([part([[0, 1, 2], [3, 4]],
                                 start=1_000.0, until=9_000.0)]) == []
        # window shorter than the bound is unjudgeable
        assert self.derive([part([[0, 1, 2], [3, 4]],
                                 until=7_000.0)]) == []

    def test_crashed_victims_are_excluded(self):
        # node 3 crashes later: its missing failover proves nothing
        exps = self.derive([part([[0, 1, 2], [3, 4]]),
                            {"kind": "crash", "node": 3, "at": 25_000.0,
                             "restart_at": None}])
        assert exps == []  # 3 crashed, 4 hosts no lock: no victims left
