"""The publish failure windows: before anything durable a transaction
unwinds to a clean abort; after a partial publish it wedges, leaving
the unpublished claims busy so readers conflict instead of observing a
torn write set."""

import pytest

from repro.ddss import DDSS, Coherence
from repro.ddss.substrate import INSTALL_BIT, VERSION_OFF
from repro.errors import DDSSError, TxnConflict
from repro.net import Cluster
from repro.txn import OCCTxnClient, TxnWorker
from repro.verify import TxnOracle, TraceView, replay_fresh
from repro.workloads.tpcc import transfer_txn


class FailingStore:
    """Delegates to a real DDSS client, but fails ``install_publish``
    for chosen keys a chosen number of times."""

    def __init__(self, inner, fail_keys, times=10 ** 9):
        self._inner = inner
        self._fail_keys = set(fail_keys)
        self._times = times

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def install_publish(self, key, expected, data):
        if key in self._fail_keys and self._times > 0:
            self._times -= 1
            raise DDSSError(f"injected publish failure for key {key}")
        return self._inner.install_publish(key, expected, data)


def _rig(observe=False):
    cluster = Cluster(n_nodes=3, seed=0)
    obs = cluster.observe(sanitize=True) if observe else None
    ddss = DDSS(cluster, segment_bytes=256 * 1024)
    keys = []

    def setup(env):
        store = ddss.client(cluster.nodes[0])
        init = OCCTxnClient(store)
        for i in range(2):
            key = yield store.allocate(32, coherence=Coherence.VERSION,
                                       placement=i)
            keys.append(key)
            r = yield init.init(key, (100).to_bytes(8, "big")
                                + b"\x00" * 24)
            assert r.committed

    cluster.env.run_until_event(
        cluster.env.process(setup(cluster.env), name="setup"))
    return cluster, ddss, obs, keys


def _word(ddss, key):
    meta = ddss._directory[key]
    seg = ddss.segment(meta.home)
    return int.from_bytes(
        seg.read(meta.addr - seg.addr + VERSION_OFF, 8), "big")


class TestCleanAbortWindow:
    def test_failure_before_commit_point_unwinds_and_retries(self):
        cluster, ddss, _obs, keys = _rig()
        store = FailingStore(ddss.client(cluster.nodes[1]),
                             fail_keys=[min(keys)], times=1)
        client = OCCTxnClient(store, max_attempts=3)
        ev = client.run(transfer_txn(keys[0], keys[1], 25))
        cluster.env.run_until_event(ev, limit=1e9)
        result = ev.value
        # attempt 1 aborted cleanly, attempt 2 committed
        assert result.committed and result.attempts == 2
        assert client.retries == 1 and client.wedges == 0
        for k in keys:
            assert not _word(ddss, k) & INSTALL_BIT

    def test_exhausted_retries_leave_state_untouched(self):
        cluster, ddss, _obs, keys = _rig()
        store = FailingStore(ddss.client(cluster.nodes[1]),
                             fail_keys=[min(keys)])
        client = OCCTxnClient(store, max_attempts=2)
        ev = client.run(transfer_txn(keys[0], keys[1], 25))
        cluster.env.run_until_event(ev, limit=1e9)
        result = ev.value
        assert not result.committed and not result.wedged
        assert client.aborts == 1
        # both units still at the init version, words clean
        assert _word(ddss, keys[0]) == _word(ddss, keys[1]) == 1


class TestWedgeWindow:
    def test_partial_publish_wedges_and_blocks_readers(self):
        cluster, ddss, obs, keys = _rig(observe=True)
        lo, hi = sorted(keys)
        store = FailingStore(ddss.client(cluster.nodes[1]),
                             fail_keys=[hi])
        client = OCCTxnClient(store, max_attempts=4)
        worker = TxnWorker(client)
        worker.add_txn(transfer_txn(lo, hi, 25))
        done = worker.start()
        cluster.env.run_until_event(done, limit=1e9)
        result = worker.results[0]
        assert result.wedged and not result.committed
        assert client.wedges == 1
        # a wedged txn is neither a commit nor a clean abort
        assert worker.commits == 0 and worker.aborts == 0
        # the published half is durable, the unpublished claim stays busy
        assert _word(ddss, lo) == 2
        assert _word(ddss, hi) & INSTALL_BIT
        # readers of the busy word conflict rather than see torn state
        reader = ddss.client(cluster.nodes[2])
        outcome = {}

        def snap(env):
            try:
                yield reader.snapshot(hi)
            except TxnConflict as exc:
                outcome["exc"] = exc

        p = cluster.env.process(snap(cluster.env), name="snap")
        cluster.env.run_until_event(p, limit=1e9)
        assert "exc" in outcome
        # the oracle treats the wedge as indeterminate, not a violation
        view = TraceView.from_obs(obs).require_complete()
        oracles, violations = replay_fresh(view, [TxnOracle])
        assert violations == []
        etypes = [ev_.etype for ev_ in view.events]
        assert "txn.wedged" in etypes
        assert oracles[0].checked > 0

    def test_wedged_result_carries_the_durable_keys(self):
        cluster, ddss, _obs, keys = _rig()
        lo, hi = sorted(keys)
        store = FailingStore(ddss.client(cluster.nodes[1]),
                             fail_keys=[hi])
        client = OCCTxnClient(store)
        ev = client.run(transfer_txn(lo, hi, 5))
        cluster.env.run_until_event(ev, limit=1e9)
        assert ev.value.wedged
        assert f"[{lo}] of [{lo}, {hi}]" in ev.value.reason
