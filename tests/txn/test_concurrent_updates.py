"""Concurrent-update correctness: N transaction workers over shared
keys, final sums conserved under both OCC and 2PL (the lstore-style
TransactionWorker harness), plus the unit-level protocol contracts the
conservation rests on."""

import pytest

from repro.ddss import DDSS, Coherence
from repro.dlm import NCoSEDManager
from repro.errors import TxnConflict, TxnError
from repro.net import Cluster
from repro.txn import (OCCTxnClient, Txn, TwoPLTxnClient, TxnWorker,
                       build_txn_scenario)
from repro.txn.scenarios import ACCOUNT_START, account_sum, unit_state
from repro.workloads.tpcc import balance, new_order_txn, transfer_txn

N_WORKERS = 6
TXNS_PER_WORKER = 5
N_ACCOUNTS = 3  # hot: every transfer collides with somebody


def _rig(n_nodes=4, seed=0, with_locks=False):
    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    ddss = DDSS(cluster, segment_bytes=256 * 1024)
    manager = (NCoSEDManager(cluster, n_locks=N_ACCOUNTS)
               if with_locks else None)
    return cluster, ddss, manager


def _setup_accounts(cluster, ddss, n=N_ACCOUNTS, start=ACCOUNT_START):
    keys = []

    def setup(env):
        store = ddss.client(cluster.nodes[0])
        init = OCCTxnClient(store)
        for i in range(n):
            key = yield store.allocate(
                32, coherence=Coherence.VERSION,
                placement=cluster.nodes[i % len(cluster.nodes)].id)
            keys.append(key)
            r = yield init.init(key, start.to_bytes(8, "big")
                                + b"\x00" * 24)
            assert r.committed

    cluster.env.run_until_event(
        cluster.env.process(setup(cluster.env), name="setup"))
    return keys


def _make_client(variant, cluster, ddss, manager, keys, i):
    node = cluster.nodes[i % len(cluster.nodes)]
    store = ddss.client(node)
    if variant == "2pl":
        return TwoPLTxnClient(store, manager.client(node),
                              lock_of={k: j for j, k in enumerate(keys)})
    return OCCTxnClient(store)


@pytest.mark.parametrize("variant", ["occ", "2pl"])
class TestConservation:
    def test_transfers_conserve_total(self, variant):
        cluster, ddss, manager = _rig(with_locks=(variant == "2pl"))
        keys = _setup_accounts(cluster, ddss)
        rng = cluster.rng.get("test-txn")
        workers = []
        for i in range(N_WORKERS):
            client = _make_client(variant, cluster, ddss, manager,
                                  keys, i)
            w = TxnWorker(client, name=f"w{i}")
            for _ in range(TXNS_PER_WORKER):
                a, b = rng.choice(len(keys), size=2, replace=False)
                w.add_txn(transfer_txn(keys[int(a)], keys[int(b)],
                                       int(rng.integers(1, 30))))
            w.start()
            workers.append(w)
        cluster.env.run(until=2_000_000.0)
        # every transaction reached a verdict, none wedged
        assert all(len(w.results) == TXNS_PER_WORKER for w in workers)
        assert all(not r.wedged for w in workers for r in w.results)
        assert account_sum(ddss, keys) == N_ACCOUNTS * ACCOUNT_START

    def test_every_version_word_is_clean_at_rest(self, variant):
        cluster, ddss, manager = _rig(with_locks=(variant == "2pl"))
        keys = _setup_accounts(cluster, ddss)
        client = _make_client(variant, cluster, ddss, manager, keys, 0)
        w = TxnWorker(client)
        w.add_txn(transfer_txn(keys[0], keys[1], 10))
        w.add_txn(transfer_txn(keys[1], keys[2], 5))
        done = w.start()
        cluster.env.run_until_event(done, limit=1e9)
        assert w.commits == 2
        for k in keys:
            word, _data = unit_state(ddss, k)
            assert word < (1 << 63), "busy bit must not survive commit"


class TestMixedVariants:
    def test_occ_and_2pl_interleave_safely(self):
        """OCC and 2PL workers race the same keys: both commit through
        the version-word CAS, so the sum still holds."""
        cluster, ddss, manager = _rig(with_locks=True)
        keys = _setup_accounts(cluster, ddss)
        rng = cluster.rng.get("test-mixed")
        workers = []
        for i in range(N_WORKERS):
            variant = "2pl" if i % 2 else "occ"
            client = _make_client(variant, cluster, ddss, manager,
                                  keys, i)
            w = TxnWorker(client, name=f"mix{i}")
            for _ in range(TXNS_PER_WORKER):
                a, b = rng.choice(len(keys), size=2, replace=False)
                w.add_txn(transfer_txn(keys[int(a)], keys[int(b)],
                                       int(rng.integers(1, 30))))
            w.start()
            workers.append(w)
        cluster.env.run(until=2_000_000.0)
        assert sum(w.commits for w in workers) > 0
        assert account_sum(ddss, keys) == N_ACCOUNTS * ACCOUNT_START

    def test_scenario_harness_conserves_for_all_variants(self):
        for variant in ("occ", "2pl", "mixed"):
            _obs, stats = build_txn_scenario(variant, seed=3, n_nodes=3,
                                             n_keys=3, n_workers=4,
                                             txns_per_worker=3)
            assert stats["conserved"], (variant, stats)
            assert stats["done"] == stats["txns"]
            assert stats["wedges"] == 0


class TestNewOrder:
    def test_new_order_moves_counters_atomically(self):
        cluster, ddss, _ = _rig()
        keys = _setup_accounts(cluster, ddss, n=4, start=50)
        district, items = keys[0], keys[1:]
        client = _make_client("occ", cluster, ddss, None, keys, 0)
        w = TxnWorker(client)
        for _ in range(3):
            w.add_txn(new_order_txn(district, items))
        done = w.start()
        cluster.env.run_until_event(done, limit=1e9)
        assert w.commits == 3
        assert balance(unit_state(ddss, district)[1]) == 50 + 3
        for it in items:
            assert balance(unit_state(ddss, it)[1]) == 50 - 3


class TestTxnApi:
    def test_write_outside_read_set_rejected(self):
        cluster, ddss, _ = _rig()
        keys = _setup_accounts(cluster, ddss)
        client = _make_client("occ", cluster, ddss, None, keys, 0)
        bad = Txn(reads=(keys[0],),
                  compute=lambda vals: {keys[1]: b"\x00" * 8},
                  label="bad")
        ev = client.run(bad)
        with pytest.raises(TxnError, match="outside read set"):
            cluster.env.run_until_event(ev, limit=1e9)

    def test_empty_read_set_rejected(self):
        cluster, ddss, _ = _rig()
        _setup_accounts(cluster, ddss)
        client = _make_client("occ", cluster, ddss, None, [], 0)
        ev = client.run(Txn(reads=(), compute=lambda v: {}, label="e"))
        with pytest.raises(TxnError, match="empty read set"):
            cluster.env.run_until_event(ev, limit=1e9)

    def test_2pl_requires_mapped_locks(self):
        cluster, ddss, manager = _rig(with_locks=True)
        keys = _setup_accounts(cluster, ddss)
        node = cluster.nodes[0]
        client = TwoPLTxnClient(ddss.client(node), manager.client(node),
                                lock_of={})
        ev = client.run(transfer_txn(keys[0], keys[1], 1))
        with pytest.raises(TxnError, match="no mapped lock"):
            cluster.env.run_until_event(ev, limit=1e9)

    def test_conflict_burns_one_attempt(self):
        """A key claimed by somebody else forces TxnConflict and the
        bounded retry loop reports the attempts it used."""
        cluster, ddss, _ = _rig()
        keys = _setup_accounts(cluster, ddss)
        store = ddss.client(cluster.nodes[1])
        client = OCCTxnClient(ddss.client(cluster.nodes[2]),
                              max_attempts=2)
        held = {}

        def hold_then_release(env):
            version, _ = yield store.snapshot(keys[0])
            yield store.install_lock(keys[0], version)
            held["v"] = version
            yield env.timeout(500.0)  # long enough to defeat attempt 1
            yield store.install_abort(keys[0], version)

        cluster.env.process(hold_then_release(cluster.env), name="hold")
        ev = client.run(transfer_txn(keys[0], keys[1], 1))
        cluster.env.run_until_event(ev, limit=1e9)
        result = ev.value
        assert result.committed
        assert result.attempts == 2
        assert client.retries == 1

    def test_snapshot_conflict_after_spin_budget(self):
        """A word left busy past the spin budget surfaces TxnConflict,
        not a hang or a torn read."""
        cluster, ddss, _ = _rig()
        keys = _setup_accounts(cluster, ddss)
        store = ddss.client(cluster.nodes[1])
        reader = ddss.client(cluster.nodes[2])
        outcome = {}

        def wedge(env):
            version, _ = yield store.snapshot(keys[0])
            yield store.install_lock(keys[0], version)
            # never released: simulates an installer that died mid-flight

        def snap(env):
            yield env.timeout(50.0)
            try:
                yield reader.snapshot(keys[0])
            except TxnConflict as exc:
                outcome["exc"] = exc

        cluster.env.process(wedge(cluster.env), name="wedge")
        p = cluster.env.process(snap(cluster.env), name="snap")
        cluster.env.run_until_event(p, limit=1e9)
        assert "exc" in outcome
