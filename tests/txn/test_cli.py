"""The `repro txn` CLI surface: run verdicts and the contention bench."""

import json

from repro.cli import main


class TestTxnRun:
    def test_run_prints_verdict_and_writes_json(self, tmp_path, capsys):
        path = tmp_path / "verdict-txn.json"
        assert main(["txn", "run", "--variant", "occ",
                     "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "verdict=ok" in out
        assert "conserved=True" in out
        doc = json.loads(path.read_text())
        assert doc["verdict"] == "ok"
        assert doc["sanitizers"] == []
        assert doc["oracles"]["txn"]["checked"] > 0
        assert doc["stats"]["conserved"] is True

    def test_run_slow_kernel_2pl(self, capsys):
        assert main(["txn", "run", "--variant", "2pl",
                     "--kernel", "slow"]) == 0
        assert "verdict=ok" in capsys.readouterr().out

    def test_check_list_includes_txn_scenarios(self, capsys):
        assert main(["check", "list"]) == 0
        names = capsys.readouterr().out.split()
        assert {"txn-occ", "txn-2pl", "txn-mixed"} <= set(names)


class TestTxnBench:
    def test_bench_writes_deterministic_doc(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["txn", "bench", "--out", str(a)]) == 0
        assert main(["txn", "bench", "--out", str(b)]) == 0
        assert a.read_text() == b.read_text()
        doc = json.loads(a.read_text())
        assert doc["verdict"] == "ok"
        assert doc["sweep"] == "txn"
        assert len(doc["records"]) == 6  # {occ,2pl} x {2,8,32} keys
        assert all(r["result"]["conserved"] for r in doc["records"])
        # the physics: OCC aborts fall as the key space spreads
        occ = {r["params"]["n_keys"]: r["result"]["attempt_aborts"]
               for r in doc["records"] if r["params"]["variant"] == "occ"}
        assert occ[2] > occ[32]
        out = capsys.readouterr().out
        assert "OCC vs 2PL" in out
