"""Tests for trace generation and open-loop replay."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.net import Cluster
from repro.cache import ApacheCache
from repro.datacenter import (
    AdmissionController,
    BackendTier,
    DataCenterMetrics,
    ProxyServer,
)
from repro.monitor import KernelStats, RdmaAsyncMonitor
from repro.workloads import FileSet
from repro.workloads.traces import OpenLoopClients, RequestTrace


def make_trace(**kw):
    defaults = dict(rng=np.random.default_rng(0), n_docs=50, alpha=0.8,
                    rate_per_ms=2.0, duration_us=100_000.0)
    defaults.update(kw)
    return RequestTrace(**defaults)


class TestRequestTrace:
    def test_rate_roughly_respected(self):
        trace = make_trace().generate()
        # 2 req/ms over 100ms -> ~200 requests
        assert 140 < len(trace) < 260

    def test_sorted_and_in_range(self):
        trace = make_trace().generate()
        times = [r.at_us for r in trace]
        assert times == sorted(times)
        assert all(0 <= r.doc < 50 for r in trace)
        assert times[-1] < 100_000.0

    def test_deterministic_given_seed(self):
        a = make_trace(rng=np.random.default_rng(7)).generate()
        b = make_trace(rng=np.random.default_rng(7)).generate()
        assert a == b

    def test_flash_crowd_raises_local_rate(self):
        trace = make_trace(rng=np.random.default_rng(1),
                           flash_at_us=50_000.0, flash_factor=5.0,
                           flash_duration_us=20_000.0).generate()
        in_flash = sum(1 for r in trace if 50_000 <= r.at_us < 70_000)
        before = sum(1 for r in trace if 20_000 <= r.at_us < 40_000)
        assert in_flash > 2.5 * max(before, 1)

    def test_diurnal_modulation_changes_density(self):
        trace = make_trace(rng=np.random.default_rng(2),
                           rate_per_ms=4.0, duration_us=1_000_000.0,
                           diurnal_amplitude=0.9,
                           diurnal_period_us=1_000_000.0).generate()
        # sine peak in the first half, trough in the second
        first = sum(1 for r in trace if r.at_us < 500_000)
        second = len(trace) - first
        assert first > 1.5 * second

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            make_trace(rate_per_ms=0)
        with pytest.raises(ConfigError):
            make_trace(diurnal_amplitude=1.5)
        with pytest.raises(ConfigError):
            make_trace(flash_at_us=0.0, flash_factor=0.5)


class TestOpenLoopReplay:
    def build(self, with_admission=False):
        cluster = Cluster(names=["client", "proxy", "app"], seed=4)
        fs = FileSet(50, 4096, seed=4)
        scheme = ApacheCache([cluster.nodes[1]], fs, 64 * 1024)
        backend = BackendTier([cluster.nodes[2]], fs)
        metrics = DataCenterMetrics(cluster.env)
        server = ProxyServer(cluster.nodes[1], scheme, backend, metrics)
        admission = None
        if with_admission:
            stats = {cluster.nodes[2].id: KernelStats(cluster.nodes[2])}
            monitor = RdmaAsyncMonitor(cluster.nodes[0], stats,
                                       period_us=500.0)
            admission = AdmissionController(monitor, high_water=6,
                                            low_water=3)
        return cluster, server, metrics, admission

    def test_replay_serves_all_requests(self):
        cluster, server, metrics, _ = self.build()
        trace = make_trace(rate_per_ms=0.5,
                           duration_us=50_000.0).generate()
        clients = OpenLoopClients(cluster.nodes[0], [server], trace)
        clients.start()
        cluster.env.run(until=500_000.0)
        assert clients.issued == len(trace)
        assert metrics.completed == len(trace)

    def test_double_start_rejected(self):
        cluster, server, metrics, _ = self.build()
        clients = OpenLoopClients(cluster.nodes[0], [server], [])
        clients.start()
        with pytest.raises(ConfigError):
            clients.start()

    def test_admission_sheds_under_flash_crowd(self):
        cluster, server, metrics, admission = self.build(
            with_admission=True)
        trace = make_trace(rng=np.random.default_rng(5),
                           rate_per_ms=3.0, duration_us=150_000.0,
                           flash_at_us=50_000.0, flash_factor=8.0,
                           flash_duration_us=40_000.0).generate()
        clients = OpenLoopClients(cluster.nodes[0], [server], trace,
                                  admission=admission)
        clients.start()
        cluster.env.run(until=800_000.0)
        assert clients.shed > 0
        assert clients.issued + clients.shed == len(trace)
        assert metrics.completed == clients.issued
