"""Tests for workload generators (Zipf, file sets, RUBiS, thread churn)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.net import Cluster
from repro.workloads import (
    FileSet,
    RubisMix,
    ThreadChurn,
    ZipfGenerator,
    zipf_pmf,
)


class TestZipf:
    def test_pmf_sums_to_one(self):
        pmf = zipf_pmf(1000, 0.8)
        assert pmf.sum() == pytest.approx(1.0)

    def test_pmf_monotone_decreasing(self):
        pmf = zipf_pmf(100, 0.9)
        assert (np.diff(pmf) <= 0).all()

    def test_alpha_zero_is_uniform(self):
        pmf = zipf_pmf(10, 0.0)
        assert np.allclose(pmf, 0.1)

    def test_higher_alpha_more_concentrated(self):
        rng = np.random.default_rng(0)
        hot_09 = ZipfGenerator(1000, 0.9, rng).hot_set_coverage(50)
        hot_02 = ZipfGenerator(1000, 0.2, rng).hot_set_coverage(50)
        assert hot_09 > hot_02 + 0.2

    def test_generator_respects_range(self):
        gen = ZipfGenerator(50, 0.8, np.random.default_rng(1))
        docs = gen.batch(5000)
        assert docs.min() >= 0 and docs.max() < 50

    def test_empirical_frequency_tracks_pmf(self):
        gen = ZipfGenerator(20, 1.0, np.random.default_rng(2))
        docs = gen.batch(60_000)
        freq0 = (docs == 0).mean()
        assert freq0 == pytest.approx(gen.hot_set_coverage(1), rel=0.1)

    def test_deterministic_given_seed(self):
        a = ZipfGenerator(100, 0.7, np.random.default_rng(3)).batch(100)
        b = ZipfGenerator(100, 0.7, np.random.default_rng(3)).batch(100)
        assert (a == b).all()

    def test_bad_args_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            zipf_pmf(0, 0.5)
        with pytest.raises(ConfigError):
            zipf_pmf(10, -1.0)
        with pytest.raises(ConfigError):
            ZipfGenerator(10, 0.5, rng).hot_set_coverage(11)

    @given(st.integers(1, 500), st.floats(0.0, 2.0))
    @settings(max_examples=50, deadline=None)
    def test_pmf_valid_distribution(self, n, alpha):
        pmf = zipf_pmf(n, alpha)
        assert pmf.shape == (n,)
        assert (pmf > 0).all()
        assert pmf.sum() == pytest.approx(1.0)


class TestFileSet:
    def test_fixed_sizes(self):
        fs = FileSet(10, 4096)
        assert fs.size(3) == 4096
        assert fs.total_bytes == 40_960

    def test_per_doc_sizes(self):
        fs = FileSet(3, [100, 200, 300])
        assert [fs.size(i) for i in range(3)] == [100, 200, 300]

    def test_tokens_unique_and_deterministic(self):
        fs = FileSet(100, 1024, seed=5)
        tokens = {fs.token(i) for i in range(100)}
        assert len(tokens) == 100
        fs2 = FileSet(100, 1024, seed=5)
        assert fs.token(42) == fs2.token(42)

    def test_different_seed_different_tokens(self):
        assert (FileSet(10, 10, seed=1).token(0)
                != FileSet(10, 10, seed=2).token(0))

    def test_verify(self):
        fs = FileSet(10, 10)
        assert fs.verify(1, fs.token(1))
        assert not fs.verify(1, fs.token(2))

    def test_mixed_two_point_distribution(self):
        fs = FileSet.mixed(1000, small=1024, large=65536,
                           large_fraction=0.3, seed=0)
        sizes = {fs.size(i) for i in range(1000)}
        assert sizes == {1024, 65536}
        n_large = sum(fs.size(i) == 65536 for i in range(1000))
        assert 200 < n_large < 400

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            FileSet(0, 10)
        with pytest.raises(ConfigError):
            FileSet(2, [10])
        with pytest.raises(ConfigError):
            FileSet(2, [10, -1])
        with pytest.raises(ConfigError):
            FileSet(1, 10).token(5)


class TestRubis:
    def test_mix_samples_all_types_eventually(self):
        mix = RubisMix(np.random.default_rng(0))
        seen = {mix.next().name for _ in range(3000)}
        assert len(seen) == len(mix.mix)

    def test_mean_cpu_positive_and_divergent(self):
        mix = RubisMix(np.random.default_rng(0))
        assert mix.mean_cpu_us() > 0
        # divergence is the point: std dev comparable to the mean
        assert mix.cpu_variance() ** 0.5 > 0.5 * mix.mean_cpu_us()

    def test_weights_respected_statistically(self):
        mix = RubisMix(np.random.default_rng(1))
        names = [mix.next().name for _ in range(20_000)]
        share = names.count("view-item") / len(names)
        assert share == pytest.approx(0.28, abs=0.03)

    def test_empty_mix_rejected(self):
        with pytest.raises(ConfigError):
            RubisMix(np.random.default_rng(0), mix=[])


class TestThreadChurn:
    def test_walk_stays_in_bounds(self):
        cluster = Cluster(n_nodes=1, seed=0)
        churn = ThreadChurn(cluster.nodes[0], cluster.rng.get("c"),
                            base=10, swing=5, step_every_us=100.0)
        cluster.env.run(until=50_000.0)
        values = [n for _t, n in churn.history]
        assert min(values) >= 5
        assert max(values) <= 15
        assert len(values) > 100

    def test_background_load_applied(self):
        cluster = Cluster(n_nodes=1, seed=0)
        churn = ThreadChurn(cluster.nodes[0], cluster.rng.get("c"),
                            base=7, swing=0)
        assert cluster.nodes[0].cpu.active_jobs == 7

    def test_at_returns_ground_truth(self):
        cluster = Cluster(n_nodes=1, seed=1)
        churn = ThreadChurn(cluster.nodes[0], cluster.rng.get("c"),
                            base=10, swing=8, step_every_us=1000.0)
        cluster.env.run(until=20_000.0)
        t, n = churn.history[5]
        assert churn.at(t) == n

    def test_bad_config(self):
        cluster = Cluster(n_nodes=1, seed=0)
        with pytest.raises(ConfigError):
            ThreadChurn(cluster.nodes[0], cluster.rng.get("c"),
                        base=2, swing=5)
        with pytest.raises(ConfigError):
            ThreadChurn(cluster.nodes[0], cluster.rng.get("c"),
                        base=5, swing=2, max_step=0)
