"""Unit behaviour of the TPC-C-flavored transaction mix."""

import pytest

from repro.net import Cluster
from repro.workloads.tpcc import (TpccMix, balance, new_order_txn,
                                  pack_balance, transfer_txn)


def unit(value, size=32):
    return value.to_bytes(8, "big") + b"\x00" * (size - 8)


class TestCounters:
    def test_balance_roundtrip(self):
        data = unit(123)
        assert balance(data) == 123
        assert balance(pack_balance(7, data)) == 7
        # non-counter bytes survive the repack
        tail = b"\x01" * 24
        assert pack_balance(7, (5).to_bytes(8, "big") + tail)[8:] == tail

    def test_balance_saturates_at_zero(self):
        assert balance(pack_balance(-3, unit(0))) == 0


class TestTransfer:
    def test_compute_moves_amount(self):
        txn = transfer_txn(1, 2, 30)
        writes = txn.compute({1: unit(100), 2: unit(5)})
        assert balance(writes[1]) == 70
        assert balance(writes[2]) == 35

    def test_amount_capped_at_source_balance(self):
        txn = transfer_txn(1, 2, 30)
        writes = txn.compute({1: unit(10), 2: unit(0)})
        assert balance(writes[1]) == 0
        assert balance(writes[2]) == 10  # only what the source had

    def test_same_account_rejected(self):
        with pytest.raises(ValueError, match="distinct accounts"):
            transfer_txn(3, 3, 1)


class TestNewOrder:
    def test_compute_shape(self):
        txn = new_order_txn(1, [2, 3])
        assert txn.keys() == (1, 2, 3)
        writes = txn.compute({1: unit(4), 2: unit(9), 3: unit(9)})
        assert balance(writes[1]) == 5
        assert balance(writes[2]) == balance(writes[3]) == 8

    def test_district_cannot_be_an_item(self):
        with pytest.raises(ValueError, match="cannot also be an item"):
            new_order_txn(1, [1, 2])


class TestMix:
    def _mix(self, seed=0, **kw):
        rng = Cluster(n_nodes=1, seed=seed).rng.get("tpcc")
        return TpccMix(rng, accounts=[1, 2, 3], districts=[4],
                       stock=[5, 6, 7], **kw)

    def test_batch_is_deterministic(self):
        a = [t.label for t in self._mix().batch(20)]
        b = [t.label for t in self._mix().batch(20)]
        assert a == b
        assert set(a) == {"transfer", "new-order"}

    def test_p_transfer_extremes(self):
        only_t = self._mix(p_transfer=1.0).batch(10)
        assert all(t.label == "transfer" for t in only_t)
        only_n = self._mix(p_transfer=0.0).batch(10)
        assert all(t.label == "new-order" for t in only_n)
        # every new-order spans the district plus 1..max_items stock keys
        assert all(2 <= len(t.keys()) <= 4 for t in only_n)

    def test_pool_validation(self):
        rng = Cluster(n_nodes=1, seed=0).rng.get("tpcc")
        with pytest.raises(ValueError, match="two accounts"):
            TpccMix(rng, accounts=[1], districts=[2], stock=[3])
        with pytest.raises(ValueError, match="districts and stock"):
            TpccMix(rng, accounts=[1, 2], districts=[], stock=[3])
