"""One parametrized suite drives every DDSS coherence model through the
same read/write/conflict script and asserts each model's visibility
contract (paper §4.1): what a reader sees after a put, how long a
cached copy may be served, which operations take the unit lock, and
what the version word records.
"""

import pytest

from repro.net import Cluster
from repro.ddss import DDSS, Coherence

A, B, C = (bytes([x]) * 32 for x in (0xAA, 0xBB, 0xCC))

#: models whose second read may legally serve a stale cached copy
STALE_OK = {Coherence.DELTA, Coherence.TEMPORAL}
#: models whose put bumps the 8-byte version word (directly or locked)
VERSIONED = {Coherence.READ, Coherence.WRITE, Coherence.STRICT,
             Coherence.VERSION, Coherence.DELTA}

TTL_US = 1_000.0


def build(model, seed=0):
    cluster = Cluster(n_nodes=4, seed=seed)
    obs = cluster.observe(strict=True)
    ddss = DDSS(cluster, segment_bytes=64 * 1024)
    writer = ddss.client(cluster.nodes[1])
    reader = ddss.client(cluster.nodes[2])
    return cluster, obs, ddss, writer, reader


def drive(cluster, gen):
    p = cluster.env.process(gen)
    cluster.env.run_until_event(p, limit=1e9)
    return p.value


@pytest.mark.parametrize("model", list(Coherence), ids=lambda m: m.value)
class TestCoherenceMatrix:
    def test_visibility_script(self, model):
        """put A / read / put B / read / put C / wait-past-bound / read.

        The second read is where the models diverge: bounded-staleness
        models (DELTA with delta=1, TEMPORAL within ttl) serve the
        cached A; every other model must return B.  After the staleness
        bound is exceeded every model converges on the latest value.
        """
        cluster, obs, ddss, writer, reader = build(model)

        def script(env):
            key = yield writer.allocate(32, coherence=model,
                                        placement=0, delta=1,
                                        ttl_us=TTL_US)
            yield writer.put(key, A)
            d1 = yield reader.get(key)
            yield writer.put(key, B)
            d2 = yield reader.get(key)
            yield writer.put(key, C)
            # exceed both staleness bounds: TEMPORAL's ttl clock and
            # DELTA's version distance (C already put it 2 > delta=1
            # versions ahead of the copy cached at d1)
            yield env.timeout(TTL_US + 1.0)
            d3 = yield reader.get(key)
            return d1, d2, d3

        d1, d2, d3 = drive(cluster, script(cluster.env))
        assert d1 == A
        if model in STALE_OK:
            assert d2 == A, "bounded-staleness read must serve the copy"
            assert reader.cache_hits >= 1
        else:
            assert d2 == B
            assert reader.cache_hits == 0
        assert d3 == C
        assert obs.clean

    def test_lock_discipline(self, model):
        """WRITE/STRICT serialize puts through the unit lock; STRICT
        alone also locks reads; everything else is lock-free."""
        cluster, obs, ddss, writer, reader = build(model)

        def script(env):
            key = yield writer.allocate(32, coherence=model,
                                        placement=0, delta=1,
                                        ttl_us=TTL_US)
            for data in (A, B):
                yield writer.put(key, data)
            yield reader.get(key)
            return None

        drive(cluster, script(cluster.env))
        locked_puts = 2 if model.locks_writes else 0
        # the read is a cache hit only for models that never lock reads,
        # so the lock count for STRICT's get is always paid
        locked_gets = 1 if model.locks_reads else 0
        acquires = obs.trace.select("ddss.lock.acquire")
        releases = obs.trace.select("ddss.lock.release")
        assert len(acquires) == locked_puts + locked_gets
        assert len(releases) == len(acquires)
        assert obs.clean

    def test_version_word(self, model):
        """Versioned models count puts in the unit's version word."""
        cluster, obs, ddss, writer, reader = build(model)

        def script(env):
            key = yield writer.allocate(32, coherence=model,
                                        placement=0, delta=1,
                                        ttl_us=TTL_US)
            for data in (A, B, C):
                yield writer.put(key, data)
            meta = yield from reader._meta(key)
            version = yield from reader._read_version(meta)
            return version

        version = drive(cluster, script(cluster.env))
        assert version == (3 if model in VERSIONED else 0)
        assert obs.clean

    def test_concurrent_writers_single_owner(self, model):
        """Two writers race puts on one unit.  Locking models serialize
        them through the spin lock (single-owner sanitizer verifies no
        overlap); the final value is one of the two writes for every
        model, since simulated RDMA writes land atomically."""
        cluster, obs, ddss, w1, reader = build(model)
        w2 = ddss.client(cluster.nodes[3])
        done = []

        def writer_proc(env, client, key, data):
            for _ in range(3):
                yield client.put(key, data)
            done.append(data)

        def script(env):
            key = yield w1.allocate(32, coherence=model, placement=0,
                                    delta=1, ttl_us=TTL_US)
            env.process(writer_proc(env, w1, key, A), name="w1")
            env.process(writer_proc(env, w2, key, B), name="w2")
            yield env.timeout(50_000.0)
            # fresh read well past every staleness bound
            value = yield reader.get(key)
            return value

        value = drive(cluster, script(cluster.env))
        assert len(done) == 2
        assert value in (A, B)
        assert obs.clean  # single-owner held even under contention
