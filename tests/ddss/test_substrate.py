"""Tests for DDSS allocate/free/lookup/get/put across coherence models."""

import pytest

from repro.errors import DDSSError
from repro.net import Cluster
from repro.ddss import DDSS, Coherence


@pytest.fixture
def setup():
    cluster = Cluster(n_nodes=4, seed=7)
    ddss = DDSS(cluster, segment_bytes=64 * 1024)
    return cluster, ddss


def run(cluster, gen):
    p = cluster.env.process(gen)
    cluster.env.run_until_event(p)
    return p.value


class TestControlPlane:
    def test_allocate_put_get_roundtrip(self, setup):
        cluster, ddss = setup
        client = ddss.client(cluster.nodes[1])

        def app(env):
            key = yield client.allocate(64)
            yield client.put(key, b"hello-ddss")
            data = yield client.get(key)
            return key, data

        key, data = run(cluster, app(cluster.env))
        assert key == 1
        assert data[:10] == b"hello-ddss"

    def test_round_robin_placement(self, setup):
        cluster, ddss = setup
        client = ddss.client(cluster.nodes[0])

        def app(env):
            homes = []
            for _ in range(8):
                key = yield client.allocate(32)
                meta = yield client.lookup(key)
                homes.append(meta.home)
            return homes

        homes = run(cluster, app(cluster.env))
        assert set(homes) == {0, 1, 2, 3}

    def test_explicit_placement(self, setup):
        cluster, ddss = setup
        client = ddss.client(cluster.nodes[0])

        def app(env):
            key = yield client.allocate(32, placement=2)
            meta = yield client.lookup(key)
            return meta.home

        assert run(cluster, app(cluster.env)) == 2

    def test_bad_placement_rejected(self, setup):
        cluster, ddss = setup
        client = ddss.client(cluster.nodes[0])

        def app(env):
            try:
                yield client.allocate(32, placement=99)
            except DDSSError:
                return "rejected"

        assert run(cluster, app(cluster.env)) == "rejected"

    def test_lookup_from_other_client(self, setup):
        cluster, ddss = setup
        alice = ddss.client(cluster.nodes[1])
        bob = ddss.client(cluster.nodes[2])

        def app(env):
            key = yield alice.allocate(64)
            yield alice.put(key, b"from-alice")
            data = yield bob.get(key)  # bob must resolve via directory
            return data

        assert run(cluster, app(cluster.env))[:10] == b"from-alice"

    def test_lookup_unknown_key(self, setup):
        cluster, ddss = setup
        client = ddss.client(cluster.nodes[0])

        def app(env):
            try:
                yield client.lookup(12345)
            except DDSSError as exc:
                return str(exc)

        assert "unknown key" in run(cluster, app(cluster.env))

    def test_free_releases_segment_space(self, setup):
        cluster, ddss = setup
        client = ddss.client(cluster.nodes[0])

        def app(env):
            key = yield client.allocate(1024, placement=3)
            used_before = ddss.allocator(3).used_bytes
            yield client.free(key)
            return used_before, ddss.allocator(3).used_bytes

        before, after = run(cluster, app(cluster.env))
        assert before > 0
        assert after == 0

    def test_get_after_free_fails(self, setup):
        cluster, ddss = setup
        alice = ddss.client(cluster.nodes[1])
        bob = ddss.client(cluster.nodes[2])

        def app(env):
            key = yield alice.allocate(64)
            yield alice.free(key)
            try:
                yield bob.get(key)
            except DDSSError:
                return "gone"

        assert run(cluster, app(cluster.env)) == "gone"

    def test_allocation_exhaustion_surfaces(self):
        cluster = Cluster(n_nodes=1, seed=0)
        ddss = DDSS(cluster, segment_bytes=256)
        client = ddss.client(cluster.nodes[0])

        def app(env):
            yield client.allocate(128)
            try:
                yield client.allocate(200)
            except DDSSError:
                return "full"

        assert run(cluster, app(cluster.env)) == "full"

    def test_oversized_put_get_rejected(self, setup):
        cluster, ddss = setup
        client = ddss.client(cluster.nodes[0])

        def app(env):
            key = yield client.allocate(16)
            outcomes = []
            try:
                yield client.put(key, b"x" * 17)
            except DDSSError:
                outcomes.append("put")
            try:
                yield client.get(key, length=17)
            except DDSSError:
                outcomes.append("get")
            return outcomes

        assert run(cluster, app(cluster.env)) == ["put", "get"]


class TestCoherenceModels:
    @pytest.mark.parametrize("model", list(Coherence))
    def test_roundtrip_every_model(self, setup, model):
        cluster, ddss = setup
        client = ddss.client(cluster.nodes[1])

        def app(env):
            key = yield client.allocate(32, coherence=model)
            yield client.put(key, b"m:" + model.value.encode())
            data = yield client.get(key)
            return data

        data = run(cluster, app(cluster.env))
        assert data.startswith(b"m:" + model.value.encode())

    def test_version_model_bumps_version(self, setup):
        cluster, ddss = setup
        client = ddss.client(cluster.nodes[1])

        def app(env):
            key = yield client.allocate(32, coherence=Coherence.VERSION)
            v0 = yield client.get_version(key)
            yield client.put(key, b"a")
            yield client.put(key, b"b")
            v2 = yield client.get_version(key)
            return v0, v2

        v0, v2 = run(cluster, app(cluster.env))
        assert (v0, v2) == (0, 2)

    def test_write_model_serializes_writers(self, setup):
        """Two concurrent writers under WRITE coherence cannot interleave
        partial writes: the final data is exactly one writer's payload."""
        cluster, ddss = setup
        w1 = ddss.client(cluster.nodes[1])
        w2 = ddss.client(cluster.nodes[2])
        reader = ddss.client(cluster.nodes[3])
        keys = {}

        def alloc(env):
            keys["k"] = yield w1.allocate(16, coherence=Coherence.WRITE)

        run(cluster, alloc(cluster.env))

        def writer(env, client, pattern):
            for _ in range(5):
                yield client.put(keys["k"], pattern)

        def check(env):
            yield cluster.env.all_of([
                cluster.env.process(writer(env, w1, b"A" * 16)),
                cluster.env.process(writer(env, w2, b"B" * 16)),
            ])
            data = yield reader.get(keys["k"])
            return data

        data = run(cluster, check(cluster.env))
        assert data in (b"A" * 16, b"B" * 16)

    def test_temporal_model_serves_cached_within_ttl(self, setup):
        cluster, ddss = setup
        writer = ddss.client(cluster.nodes[1])
        reader = ddss.client(cluster.nodes[2])

        def app(env):
            key = yield writer.allocate(
                16, coherence=Coherence.TEMPORAL, ttl_us=10_000)
            yield writer.put(key, b"v1")
            yield reader.get(key)          # fills reader's cache
            hits0 = reader.cache_hits
            yield reader.get(key)          # within ttl: cache hit
            hits1 = reader.cache_hits
            yield env.timeout(20_000)
            yield reader.get(key)          # expired: refetch
            hits2 = reader.cache_hits
            return hits0, hits1, hits2

        h0, h1, h2 = run(cluster, app(cluster.env))
        assert (h0, h1, h2) == (0, 1, 1)

    def test_temporal_cached_get_takes_zero_time(self, setup):
        cluster, ddss = setup
        client = ddss.client(cluster.nodes[1])

        def app(env):
            key = yield client.allocate(
                16, coherence=Coherence.TEMPORAL, ttl_us=1e6)
            yield client.put(key, b"v")
            yield client.get(key)
            t0 = env.now
            yield client.get(key)
            return env.now - t0

        assert run(cluster, app(cluster.env)) == 0.0

    def test_delta_model_staleness_bound(self, setup):
        """A delta=2 reader serves its cache until 3 versions behind."""
        cluster, ddss = setup
        writer = ddss.client(cluster.nodes[1])
        reader = ddss.client(cluster.nodes[2])

        def app(env):
            key = yield writer.allocate(16, coherence=Coherence.DELTA,
                                        delta=2)
            yield writer.put(key, b"v1")
            first = yield reader.get(key)      # caches v1
            yield writer.put(key, b"v2")
            yield writer.put(key, b"v3")
            second = yield reader.get(key)     # 2 behind: cached v1 ok
            hits_mid = reader.cache_hits
            yield writer.put(key, b"v4")
            third = yield reader.get(key)      # 3 behind: must refetch
            return first[:2], second[:2], third[:2], hits_mid

        first, second, third, hits_mid = run(cluster, app(cluster.env))
        assert first == b"v1"
        assert second == b"v1"  # served stale within bound
        assert third == b"v4"
        assert hits_mid == 1

    def test_strict_model_reader_excluded_during_write(self, setup):
        """Under STRICT, a reader that starts during a long writer hold
        observes only pre- or post-write data (no torn reads) and the
        lock word is free afterwards."""
        cluster, ddss = setup
        writer = ddss.client(cluster.nodes[1])
        reader = ddss.client(cluster.nodes[2])

        def app(env):
            key = yield writer.allocate(16, coherence=Coherence.STRICT)
            yield writer.put(key, b"S" * 16)
            meta = yield writer.lookup(key)
            data = yield reader.get(key)
            # after everything completes the lock must be free
            seg_lock = cluster.nodes[meta.home].memory.rdma_read(
                meta.addr, meta.rkey, 8)
            return data, seg_lock

        data, lock_word = run(cluster, app(cluster.env))
        assert data == b"S" * 16
        assert lock_word == b"\x00" * 8

    def test_null_put_is_cheapest(self, setup):
        cluster, ddss = setup
        client = ddss.client(cluster.nodes[1])

        def timed_put(env, model):
            # pin the unit to a fixed *remote* home so placement does not
            # confound the comparison (the client lives on node 1)
            key = yield client.allocate(64, coherence=model, placement=3)
            t0 = env.now
            yield client.put(key, b"x" * 64)
            return env.now - t0

        t_null = run(cluster, timed_put(cluster.env, Coherence.NULL))
        t_strict = run(cluster, timed_put(cluster.env, Coherence.STRICT))
        t_version = run(cluster, timed_put(cluster.env, Coherence.VERSION))
        assert t_null < t_version < t_strict

    def test_put_latency_within_paper_envelope(self, setup):
        """Fig 3a: 1-byte put stays under ~55us for every model."""
        cluster, ddss = setup
        client = ddss.client(cluster.nodes[1])

        def timed_put(env, model):
            key = yield client.allocate(8, coherence=model)
            t0 = env.now
            yield client.put(key, b"x")
            return env.now - t0

        for model in Coherence:
            t = run(cluster, timed_put(cluster.env, model))
            assert t <= 55.0, f"{model}: {t}us"


class TestLocking:
    def test_acquire_release(self, setup):
        cluster, ddss = setup
        client = ddss.client(cluster.nodes[1])

        def app(env):
            key = yield client.allocate(16)
            yield client.acquire(key)
            meta = yield client.lookup(key)
            word = cluster.nodes[meta.home].memory.rdma_read(
                meta.addr, meta.rkey, 8)
            held = int.from_bytes(word, "big") != 0
            yield client.release(key)
            word = cluster.nodes[meta.home].memory.rdma_read(
                meta.addr, meta.rkey, 8)
            freed = int.from_bytes(word, "big") == 0
            return held, freed

        assert run(cluster, app(cluster.env)) == (True, True)

    def test_mutual_exclusion_between_clients(self, setup):
        cluster, ddss = setup
        c1 = ddss.client(cluster.nodes[1])
        c2 = ddss.client(cluster.nodes[2])
        holders = []
        overlap = []

        def contender(env, client, tag, key):
            yield client.acquire(key)
            if holders:
                overlap.append(tag)
            holders.append(tag)
            yield env.timeout(100.0)
            holders.remove(tag)
            yield client.release(key)

        def app(env):
            key = yield c1.allocate(16)
            yield env.all_of([
                env.process(contender(env, c1, "a", key)),
                env.process(contender(env, c2, "b", key)),
            ])

        run(cluster, app(cluster.env))
        assert overlap == []

    def test_release_without_ownership_fails(self, setup):
        cluster, ddss = setup
        c1 = ddss.client(cluster.nodes[1])
        c2 = ddss.client(cluster.nodes[2])

        def app(env):
            key = yield c1.allocate(16)
            yield c1.acquire(key)
            try:
                yield c2.release(key)
            except Exception as exc:
                return type(exc).__name__

        assert run(cluster, app(cluster.env)) == "CoherenceError"


class TestIpc:
    def test_ipc_handles_share_substrate(self, setup):
        from repro.ddss import IpcPortal
        cluster, ddss = setup
        portal = IpcPortal(ddss.client(cluster.nodes[1]))
        p1 = portal.attach("apache-worker-1")
        p2 = portal.attach("apache-worker-2")

        def app(env):
            key = yield p1.allocate(32)
            yield p1.put(key, b"shared-via-ipc")
            data = yield p2.get(key)
            return data, p1.ops, p2.ops

        data, ops1, ops2 = run(cluster, app(cluster.env))
        assert data[:14] == b"shared-via-ipc"
        assert ops1 == 2 and ops2 == 1

    def test_ipc_adds_latency(self, setup):
        from repro.ddss import IpcPortal
        cluster, ddss = setup
        direct = ddss.client(cluster.nodes[1])
        portal = IpcPortal(ddss.client(cluster.nodes[2]))
        handle = portal.attach("proc")

        def timed(env, client):
            key = yield client.allocate(16)
            yield client.put(key, b"x")
            t0 = env.now
            data = yield client.get(key)
            return env.now - t0

        t_direct = run(cluster, timed(cluster.env, direct))
        t_ipc = run(cluster, timed(cluster.env, handle))
        assert t_ipc > t_direct

    def test_double_attach_rejected(self, setup):
        from repro.ddss import IpcPortal
        cluster, ddss = setup
        portal = IpcPortal(ddss.client(cluster.nodes[1]))
        portal.attach("p")
        with pytest.raises(DDSSError):
            portal.attach("p")
        portal.detach("p")
        portal.attach("p")
        assert portal.attached == 1
