"""Unit + property tests for the segment allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.ddss.allocator import SegmentAllocator


class TestBasics:
    def test_alloc_free_roundtrip(self):
        a = SegmentAllocator(1024)
        off = a.alloc(100)
        assert a.used_bytes == 104  # aligned to 8
        a.free(off)
        assert a.used_bytes == 0
        assert a.free_bytes == 1024

    def test_distinct_offsets(self):
        a = SegmentAllocator(1024)
        offs = [a.alloc(64) for _ in range(8)]
        assert len(set(offs)) == 8

    def test_alignment(self):
        a = SegmentAllocator(1024)
        a.alloc(1)
        off2 = a.alloc(1)
        assert off2 % 8 == 0

    def test_exhaustion_raises(self):
        a = SegmentAllocator(256)
        a.alloc(200)
        with pytest.raises(AllocationError):
            a.alloc(100)

    def test_exact_fit(self):
        a = SegmentAllocator(256)
        off = a.alloc(256)
        assert off == 0
        assert a.free_bytes == 0
        a.free(off)
        assert a.free_bytes == 256

    def test_double_free_rejected(self):
        a = SegmentAllocator(256)
        off = a.alloc(8)
        a.free(off)
        with pytest.raises(AllocationError):
            a.free(off)

    def test_free_unknown_offset_rejected(self):
        a = SegmentAllocator(256)
        with pytest.raises(AllocationError):
            a.free(128)

    def test_zero_size_rejected(self):
        a = SegmentAllocator(256)
        with pytest.raises(AllocationError):
            a.alloc(0)

    def test_bad_capacity_rejected(self):
        with pytest.raises(AllocationError):
            SegmentAllocator(0)

    def test_coalescing_recovers_large_block(self):
        a = SegmentAllocator(312)  # 3 x 104 (100 rounded up to 8)
        offs = [a.alloc(100) for _ in range(3)]
        # free in an order that exercises both merge directions
        a.free(offs[0])
        a.free(offs[2])
        a.free(offs[1])
        assert a.largest_free_block() == 312
        a.check_invariants()

    def test_reuse_after_free(self):
        a = SegmentAllocator(128)
        off1 = a.alloc(64)
        a.alloc(64)
        a.free(off1)
        off3 = a.alloc(64)
        assert off3 == off1


@st.composite
def alloc_free_trace(draw):
    """A random interleaving of allocs and frees."""
    n = draw(st.integers(2, 40))
    ops = []
    for _ in range(n):
        if draw(st.booleans()):
            ops.append(("alloc", draw(st.integers(1, 300))))
        else:
            ops.append(("free", draw(st.integers(0, 30))))
    return ops


class TestProperties:
    @given(alloc_free_trace())
    @settings(max_examples=200, deadline=None)
    def test_invariants_hold_under_random_traces(self, ops):
        a = SegmentAllocator(2048)
        live = []
        for op, arg in ops:
            if op == "alloc":
                try:
                    off = a.alloc(arg)
                    live.append(off)
                except AllocationError:
                    pass
            elif live:
                idx = arg % len(live)
                a.free(live.pop(idx))
            a.check_invariants()
        # books must balance
        assert a.used_bytes + a.free_bytes == 2048
        assert a.n_allocations == len(live)

    @given(st.lists(st.integers(1, 100), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_free_all_restores_empty_segment(self, sizes):
        a = SegmentAllocator(4096)
        offs = []
        for s in sizes:
            offs.append(a.alloc(s))
        for off in offs:
            a.free(off)
        assert a.free_bytes == 4096
        assert a.largest_free_block() == 4096
        a.check_invariants()

    @given(st.lists(st.integers(1, 64), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_allocations_never_overlap(self, sizes):
        a = SegmentAllocator(8192)
        spans = []
        for s in sizes:
            off = a.alloc(s)
            for o, length in spans:
                assert off + s <= o or off >= o + length
            spans.append((off, s))
