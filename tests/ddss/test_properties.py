"""Property-based tests for DDSS coherence invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net import Cluster
from repro.ddss import DDSS, Coherence


def fresh(seed=0, n_nodes=3):
    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    ddss = DDSS(cluster, segment_bytes=128 * 1024)
    return cluster, ddss


def run(cluster, gen, limit=1e9):
    p = cluster.env.process(gen)
    cluster.env.run_until_event(p, limit=limit)
    return p.value


@given(data=st.binary(min_size=1, max_size=64))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_put_get_roundtrip_preserves_bytes(data):
    """Whatever bytes go in come back out, for every coherence model."""
    cluster, ddss = fresh()
    client = ddss.client(cluster.nodes[1])

    def app(env):
        out = {}
        for model in Coherence:
            key = yield client.allocate(len(data), coherence=model)
            yield client.put(key, data)
            out[model] = yield client.get(key)
        return out

    for model, got in run(cluster, app(cluster.env)).items():
        assert got == data, model


@given(writes=st.lists(st.binary(min_size=4, max_size=16),
                       min_size=1, max_size=8))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_sequential_writes_last_one_wins(writes):
    """Under every model, a single writer's final put defines the data
    observed afterwards by a remote reader."""
    cluster, ddss = fresh(seed=1)
    writer = ddss.client(cluster.nodes[1])
    reader = ddss.client(cluster.nodes[2])

    def app(env):
        key = yield writer.allocate(16, coherence=Coherence.STRICT)
        for data in writes:
            yield writer.put(key, data)
        got = yield reader.get(key, length=len(writes[-1]))
        return got

    assert run(cluster, app(cluster.env)) == writes[-1]


@given(n_puts=st.integers(1, 10))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_version_counter_counts_puts_exactly(n_puts):
    cluster, ddss = fresh(seed=2)
    client = ddss.client(cluster.nodes[1])

    def app(env):
        key = yield client.allocate(8, coherence=Coherence.VERSION)
        for i in range(n_puts):
            yield client.put(key, bytes([i % 256] * 4))
        return (yield client.get_version(key))

    assert run(cluster, app(cluster.env)) == n_puts


@given(delta=st.integers(0, 5), extra_puts=st.integers(0, 8))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_delta_staleness_never_exceeds_bound(delta, extra_puts):
    """A DELTA reader can serve stale data, but never more than
    ``delta`` versions behind the home copy."""
    cluster, ddss = fresh(seed=3)
    writer = ddss.client(cluster.nodes[1])
    reader = ddss.client(cluster.nodes[2])

    def app(env):
        key = yield writer.allocate(8, coherence=Coherence.DELTA,
                                    delta=delta)
        yield writer.put(key, (1).to_bytes(8, "big"))
        yield reader.get(key)  # caches version 1
        for v in range(2, 2 + extra_puts):
            yield writer.put(key, v.to_bytes(8, "big"))
        observed = int.from_bytes((yield reader.get(key)), "big")
        current = 1 + extra_puts
        return current - observed

    staleness = run(cluster, app(cluster.env))
    assert 0 <= staleness <= delta


@given(sizes=st.lists(st.integers(1, 2048), min_size=1, max_size=15))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_allocate_free_cycles_leak_nothing(sizes):
    cluster, ddss = fresh(seed=4, n_nodes=2)
    client = ddss.client(cluster.nodes[0])
    baseline = [ddss.allocator(n.id).used_bytes for n in cluster.nodes]

    def app(env):
        keys = []
        for size in sizes:
            keys.append((yield client.allocate(size)))
        for key in keys:
            yield client.free(key)

    run(cluster, app(cluster.env))
    after = [ddss.allocator(n.id).used_bytes for n in cluster.nodes]
    assert after == baseline
    assert ddss.directory_size() == 0
