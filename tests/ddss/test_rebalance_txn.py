"""Regression: the transactional install path versus concurrent
rebalancing.  A CAS against a key whose unit the ReconfigManager just
moved must fail-retry through the directory — it can never install at
the stale home."""

import pytest

from repro.ddss import DDSS, Coherence
from repro.ddss.substrate import (HEADER_BYTES, INSTALL_BIT, TOMBSTONE,
                                  VERSION_OFF)
from repro.errors import DDSSError
from repro.net import Cluster
from repro.reconfig import ReconfigManager
from repro.txn import OCCTxnClient
from repro.workloads.tpcc import transfer_txn


def _rig(n_nodes=3, seed=0):
    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    ddss = DDSS(cluster, segment_bytes=256 * 1024)
    return cluster, ddss


def _alloc(cluster, ddss, home=0, payload=b"\x00" * 8 + b"\x00" * 24):
    """One 32-byte VERSION unit on `home`, initialised via the txn path."""
    box = {}

    def setup(env):
        store = ddss.client(cluster.nodes[0])
        key = yield store.allocate(32, coherence=Coherence.VERSION,
                                   placement=home)
        r = yield OCCTxnClient(store).init(key, payload)
        assert r.committed
        box["key"] = key

    cluster.env.run_until_event(
        cluster.env.process(setup(cluster.env), name="setup"))
    return box["key"]


def _old_block(ddss, meta):
    seg = ddss.segment(meta.home)
    off = meta.addr - seg.addr
    word = int.from_bytes(seg.read(off + VERSION_OFF, 8), "big")
    return word, seg.read(off + HEADER_BYTES, meta.size)


class TestStaleHomeCas:
    def test_install_lock_chases_tombstone_to_new_home(self):
        cluster, ddss = _rig()
        key = _alloc(cluster, ddss, home=0,
                     payload=(100).to_bytes(8, "big") + b"\x00" * 24)
        client = ddss.client(cluster.nodes[2])
        state = {}

        def txn(env):
            version, _data = yield client.snapshot(key)  # caches meta
            old_meta = ddss._directory[key]
            ddss.migrate_unit(key, new_home=1)           # rebalance races us
            yield client.install_lock(key, version)      # must fail-retry
            state["stale_after_lock"] = client.stale_retries
            yield client.install_publish(
                key, version, (7).to_bytes(8, "big"))
            state["old_meta"] = old_meta

        cluster.env.run_until_event(
            cluster.env.process(txn(cluster.env), name="txn"), limit=1e9)

        # the CAS re-resolved instead of landing at the stale address
        assert state["stale_after_lock"] > 0
        word, data = _old_block(ddss, state["old_meta"])
        assert word == TOMBSTONE
        # old bytes untouched by the install: still the pre-move value
        assert data[:8] == (100).to_bytes(8, "big")
        # the install committed at the unit's new home
        new_meta = ddss._directory[key]
        assert new_meta.home == 1
        seg = ddss.segment(1)
        off = new_meta.addr - seg.addr
        new_word = int.from_bytes(seg.read(off + VERSION_OFF, 8), "big")
        assert new_word == 2  # init's v1, then our publish
        assert seg.read(off + HEADER_BYTES, 8) == (7).to_bytes(8, "big")

    def test_snapshot_and_peek_chase_tombstones(self):
        cluster, ddss = _rig()
        key = _alloc(cluster, ddss, home=0,
                     payload=(5).to_bytes(8, "big") + b"\x00" * 24)
        client = ddss.client(cluster.nodes[2])
        out = {}

        def warm_then_read(env):
            yield client.snapshot(key)                  # warm the cache
            ddss.migrate_unit(key, new_home=2)
            out["snap"] = yield client.snapshot(key)
            out["peek"] = yield client.peek_version(key)

        cluster.env.run_until_event(
            cluster.env.process(warm_then_read(cluster.env), name="r"),
            limit=1e9)
        version, data = out["snap"]
        assert version == 1 and data[:8] == (5).to_bytes(8, "big")
        assert out["peek"] == 1
        assert client.stale_retries > 0

    def test_whole_txn_commits_across_migration(self):
        cluster, ddss = _rig()
        src = _alloc(cluster, ddss, home=0,
                     payload=(100).to_bytes(8, "big") + b"\x00" * 24)
        dst = _alloc(cluster, ddss, home=0,
                     payload=(100).to_bytes(8, "big") + b"\x00" * 24)
        client = OCCTxnClient(ddss.client(cluster.nodes[2]))

        def warm(env):
            yield client.store.snapshot(src)
            yield client.store.snapshot(dst)

        cluster.env.run_until_event(
            cluster.env.process(warm(cluster.env), name="warm"))
        ddss.migrate_unit(src, new_home=1)
        ev = client.run(transfer_txn(src, dst, 30))
        cluster.env.run_until_event(ev, limit=1e9)
        assert ev.value.committed
        assert client.store.stale_retries > 0


class TestRebalanceGuards:
    def test_busy_unit_is_not_moved(self):
        cluster, ddss = _rig()
        key = _alloc(cluster, ddss, home=0)
        store = ddss.client(cluster.nodes[1])

        def claim(env):
            version, _ = yield store.snapshot(key)
            yield store.install_lock(key, version)

        cluster.env.run_until_event(
            cluster.env.process(claim(cluster.env), name="claim"))
        with pytest.raises(DDSSError, match="install in flight"):
            ddss.migrate_unit(key, new_home=1)
        assert ddss._directory[key].home == 0  # untouched

    def test_unknown_key_and_non_member_rejected(self):
        cluster, ddss = _rig()
        key = _alloc(cluster, ddss, home=0)
        with pytest.raises(DDSSError, match="unknown key"):
            ddss.migrate_unit(999, new_home=1)
        with pytest.raises(DDSSError, match="not a DDSS member"):
            ddss.migrate_unit(key, new_home=42)

    def test_migrate_off_skips_busy_and_moves_the_rest(self):
        cluster, ddss = _rig()
        keys = [_alloc(cluster, ddss, home=0) for _ in range(3)]
        store = ddss.client(cluster.nodes[1])

        def claim(env):
            version, _ = yield store.snapshot(keys[0])
            yield store.install_lock(keys[0], version)

        cluster.env.run_until_event(
            cluster.env.process(claim(cluster.env), name="claim"))
        moved = ddss.migrate_off(0, avoid=(2,))
        assert moved == 2
        assert ddss._directory[keys[0]].home == 0  # busy: left behind
        assert all(ddss._directory[k].home == 1 for k in keys[1:])

    def test_migrate_off_without_live_targets_fails(self):
        cluster, ddss = _rig()
        _alloc(cluster, ddss, home=0)
        with pytest.raises(DDSSError, match="no live member"):
            ddss.migrate_off(0, avoid=(1, 2))


class TestReconfigHook:
    def test_evicting_a_node_rebalances_its_units(self):
        """ReconfigManager wired with ddss=: declaring a node dead
        tombstones every unit it homed and repoints the directory, so
        stale clients fail-retry instead of writing to a dead home."""
        cluster, ddss = _rig(n_nodes=4)
        keys = [_alloc(cluster, ddss, home=1) for _ in range(2)]
        manager = ReconfigManager(cluster.nodes[0], services=[],
                                  ddss=ddss)
        manager._evict(1)
        assert all(ddss._directory[k].home != 1 for k in keys)

    def test_evict_without_ddss_is_harmless(self):
        cluster, _ddss = _rig()
        manager = ReconfigManager(cluster.nodes[0], services=[])
        manager._evict(1)  # no ddss wired: services-only eviction
        assert manager.evictions == []
