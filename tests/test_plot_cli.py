"""Tests for ASCII charts and the CLI wiring."""

import pytest

from repro.bench.plot import ascii_bars, ascii_chart
from repro.cli import EXPERIMENTS, main


class TestAsciiChart:
    def test_contains_all_series_markers(self):
        out = ascii_chart({"a": [1, 2, 3], "b": [3, 2, 1]},
                          x_labels=[10, 20, 30], title="t")
        assert "t" in out
        assert "*" in out and "o" in out
        assert "*=a" in out and "o=b" in out

    def test_axis_labels_show_extremes(self):
        out = ascii_chart({"s": [5.0, 25.0]}, x_labels=["x", "y"])
        assert "25.0" in out and "5.0" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": [1, 2]}, x_labels=[1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({}, x_labels=[])

    def test_flat_series_ok(self):
        out = ascii_chart({"flat": [2.0, 2.0, 2.0]}, x_labels=[1, 2, 3])
        assert "flat" in out


class TestAsciiBars:
    def test_bar_lengths_proportional(self):
        out = ascii_bars({"big": 100.0, "small": 25.0}, width=40)
        lines = {l.split("|")[0].strip(): l for l in out.splitlines()}
        assert lines["big"].count("#") == 40
        assert lines["small"].count("#") == 10

    def test_bad_input(self):
        with pytest.raises(ValueError):
            ascii_bars({})
        with pytest.raises(ValueError):
            ascii_bars({"x": 0.0})


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp in ("fig3a", "fig5a", "fig8a", "reconfig"):
            assert exp in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_covers_every_paper_figure(self):
        assert {"fig3a", "fig3b", "fig5a", "fig5b", "fig6",
                "fig8a", "fig8b"} <= set(EXPERIMENTS)

    def test_run_quick_experiment(self, capsys):
        assert main(["run", "flowctl"]) == 0
        out = capsys.readouterr().out
        assert "Flow control" in out
        assert "speedup" in out
