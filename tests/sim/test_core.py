"""Unit tests for the event loop, events, and processes."""

import pytest

from repro.sim import Environment, Event, Interrupt, SimulationError


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 5.0
    assert env.now == 5.0


def test_timeout_value_passthrough():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1.0, value="payload")
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == "payload"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_zero_delay_events_fire_in_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(0.0)
        order.append(tag)

    for tag in range(5):
        env.process(proc(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_same_time_events_deterministic_across_runs():
    def build():
        env = Environment()
        order = []

        def proc(env, tag):
            yield env.timeout(3.0)
            order.append(tag)

        for tag in "abcdef":
            env.process(proc(env, tag))
        env.run()
        return order

    assert build() == build()


def test_process_join():
    env = Environment()

    def child(env):
        yield env.timeout(7.0)
        return 42

    def parent(env):
        result = yield env.process(child(env))
        return (env.now, result)

    p = env.process(parent(env))
    env.run()
    assert p.value == (7.0, 42)


def test_event_succeed_once_only():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("no"))


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_failed_event_propagates_into_process():
    env = Environment()

    def proc(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            return f"caught:{exc}"

    ev = env.event()
    p = env.process(proc(env, ev))
    ev.fail(RuntimeError("boom"))
    env.run()
    assert p.value == "caught:boom"


def test_unhandled_process_exception_surfaces():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise ValueError("kaput")

    env.process(proc(env))
    with pytest.raises(ValueError, match="kaput"):
        env.run()


def test_watched_process_exception_delivered_to_parent():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        raise ValueError("inner")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            return str(exc)

    p = env.process(parent(env))
    env.run()
    assert p.value == "inner"


def test_yield_non_event_rejected():
    env = Environment()

    def proc(env):
        yield 123

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run()


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(10.0, value="slow")
        t2 = env.timeout(2.0, value="fast")
        done = yield env.any_of([t1, t2])
        return (env.now, list(done.values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (2.0, ["fast"])


def test_all_of_waits_for_all():
    env = Environment()

    def proc(env):
        t1 = env.timeout(10.0, value="a")
        t2 = env.timeout(2.0, value="b")
        done = yield env.all_of([t1, t2])
        return (env.now, sorted(done.values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (10.0, ["a", "b"])


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        yield env.all_of([])
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0


def test_run_until_limits_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(100.0)

    env.process(proc(env))
    env.run(until=30.0)
    assert env.now == 30.0


def test_run_until_event_deadlock_detection():
    env = Environment()
    ev = env.event()  # nobody will ever trigger this
    with pytest.raises(SimulationError, match="deadlock"):
        env.run_until_event(ev)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env, ev):
        yield env.timeout(4.0)
        ev.succeed("done")

    ev = env.event()
    env.process(proc(env, ev))
    assert env.run_until_event(ev) == "done"
    assert env.now == 4.0


def test_interrupt_wakes_process_with_cause():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(100.0)
            return "finished"
        except Interrupt as irq:
            return ("interrupted", env.now, irq.cause)

    def attacker(env, target):
        yield env.timeout(5.0)
        target.interrupt(cause="preempt")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert v.value == ("interrupted", 5.0, "preempt")


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_callbacks_after_processed_run_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("v")
    env.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_clock_monotonic_through_mixed_schedule():
    env = Environment()
    stamps = []

    def proc(env, delay):
        yield env.timeout(delay)
        stamps.append(env.now)

    for d in [5.0, 1.0, 3.0, 1.0, 0.0]:
        env.process(proc(env, d))
    env.run()
    assert stamps == sorted(stamps)
    assert stamps[0] == 0.0 and stamps[-1] == 5.0
