"""Kernel fast paths vs the naive heap-only kernel.

The contract (DESIGN.md §9): with the same seed, a run with the fast
paths enabled and a run under ``REPRO_SLOW_KERNEL=1`` must fire every
externally visible event at the same simulated instant and in the same
relative order — checked here three ways: a property test on raw
same-timestamp scheduling, timeline equivalence of contended fabric
transfers, and byte-identical observability exports of the packaged
scenarios.
"""

import random

import pytest

from repro.sim import (Environment, Resource, heap_agenda_requested,
                       slow_kernel_requested)
from repro.sim.core import SimulationError


def _make_env(monkeypatch, slow: bool) -> Environment:
    monkeypatch.setenv("REPRO_SLOW_KERNEL", "1" if slow else "0")
    env = Environment()
    assert env.fastpath is (not slow)
    return env


# ---------------------------------------------------------------------------
# kernel ordering
# ---------------------------------------------------------------------------

def _random_workload(env, seed, log):
    """Schedule a random mix of timeouts, immediate events and processes,
    recording the firing order of every labelled occurrence."""
    rng = random.Random(seed)

    def note(label):
        return lambda ev: log.append((env.now, label))

    def proc(env, ident, depth):
        for i in range(rng.randint(1, 3)):
            delay = rng.choice([0.0, 0.0, 1.0, 2.5, rng.random()])
            yield env.timeout(delay)
            log.append((env.now, f"p{ident}.{i}"))
            if depth and rng.random() < 0.4:
                child = env.process(proc(env, f"{ident}c", depth - 1))
                if rng.random() < 0.5:
                    yield child

    for n in range(8):
        env.process(proc(env, n, 2))
        ev = env.event()
        ev.add_callback(note(f"e{n}"))
        if rng.random() < 0.5:
            ev.succeed(n)
        else:
            env.timeout(rng.choice([0.0, 1.0]), value=n) \
               .add_callback(lambda e, n=n: log.append((env.now, f"t{n}")))
            ev.succeed()
    env.run()


@pytest.mark.parametrize("seed", range(12))
def test_same_timestamp_order_matches_heap_only_kernel(monkeypatch, seed):
    logs = []
    for slow in (False, True):
        env = _make_env(monkeypatch, slow)
        log = []
        _random_workload(env, seed, log)
        logs.append((log, env.now))
    (fast_log, fast_now), (slow_log, slow_now) = logs
    assert fast_now == slow_now
    assert fast_log == slow_log


def test_slow_kernel_env_flag(monkeypatch):
    monkeypatch.delenv("REPRO_SLOW_KERNEL", raising=False)
    assert not slow_kernel_requested()
    monkeypatch.setenv("REPRO_SLOW_KERNEL", "0")
    assert not slow_kernel_requested()
    monkeypatch.setenv("REPRO_SLOW_KERNEL", "1")
    assert slow_kernel_requested()
    assert Environment().fastpath is False


def test_heap_agenda_env_flag(monkeypatch):
    monkeypatch.delenv("REPRO_HEAP_AGENDA", raising=False)
    monkeypatch.delenv("REPRO_SLOW_KERNEL", raising=False)
    assert not heap_agenda_requested()
    assert Environment()._ladder is True
    monkeypatch.setenv("REPRO_HEAP_AGENDA", "1")
    assert heap_agenda_requested()
    env = Environment()
    assert env._ladder is False
    assert env.fastpath is True  # heap kernel keeps every fast path


@pytest.mark.parametrize("seed", range(6))
def test_heap_agenda_kernel_matches_ladder(monkeypatch, seed):
    """Three-way firing identity: ladder == heap-agenda == slow."""
    logs = []
    for kernel in ("ladder", "heap", "slow"):
        monkeypatch.delenv("REPRO_HEAP_AGENDA", raising=False)
        monkeypatch.setenv("REPRO_SLOW_KERNEL",
                           "1" if kernel == "slow" else "0")
        if kernel == "heap":
            monkeypatch.setenv("REPRO_HEAP_AGENDA", "1")
        env = Environment()
        assert env._ladder is (kernel == "ladder")
        log = []
        _random_workload(env, seed, log)
        logs.append((log, env.now))
    assert logs[0] == logs[1] == logs[2]


# ---------------------------------------------------------------------------
# link reservation (Resource.try_reserve)
# ---------------------------------------------------------------------------

def test_reservation_occupies_then_lapses():
    env = Environment()
    link = Resource(env, capacity=1)
    assert link.try_reserve(5.0)
    assert not link.try_acquire()      # reserved slot counts as occupied
    assert not link.try_reserve(9.0)   # one reservation at a time
    env.run(until=5.0)                 # inclusive: still held *at* 5.0
    assert not link.try_acquire()
    env._now = 5.5
    assert link.try_acquire()          # lapsed without any agenda entry
    link.release()


def test_waiter_behind_reservation_granted_at_deadline():
    env = Environment()
    link = Resource(env, capacity=1)
    granted = []
    assert link.try_reserve(4.0)

    def waiter(env):
        yield link.acquire()
        granted.append(env.now)
        link.release()

    env.process(waiter(env))
    env.process(waiter(env))
    env.run()
    # FIFO: first waiter gets the slot exactly at the deadline, second
    # immediately after the first's release (same instant here).
    assert granted == [4.0, 4.0]
    assert link.in_use == 0 and link.queue_len == 0


def test_reservation_respects_fifo_queue():
    env = Environment()
    link = Resource(env, capacity=1)
    assert link.try_acquire()

    def holder_release(env):
        yield env.timeout(3.0)
        link.release()

    got = []

    def waiter(env):
        yield link.acquire()
        got.append(env.now)

    env.process(holder_release(env))
    env.process(waiter(env))
    env.run(until=1.0)
    # a queued waiter blocks new reservations (no queue jumping)
    assert not link.try_reserve(10.0)
    env.run()
    assert got == [3.0]


# ---------------------------------------------------------------------------
# fabric: contended transfers keep slow-path timing
# ---------------------------------------------------------------------------

def _burst_timeline(monkeypatch, slow):
    from repro.net import Cluster

    monkeypatch.setenv("REPRO_SLOW_KERNEL", "1" if slow else "0")
    cluster = Cluster(n_nodes=3, seed=0)
    env = cluster.env
    fabric = cluster.fabric
    arrivals = []

    def sender(env, delay, nbytes, label):
        yield env.timeout(delay)
        yield fabric.transfer(0, 1, nbytes)
        arrivals.append((label, env.now))

    # overlapping windows: 2nd/3rd transfers start while the 1st still
    # holds node 0's egress link, exercising the reservation hand-off
    env.process(sender(env, 0.0, 65536, "a"))
    env.process(sender(env, 0.1, 4096, "b"))
    env.process(sender(env, 0.1, 64, "c"))
    env.process(sender(env, 500.0, 64, "late"))
    env.run()
    return arrivals, env.now


def test_contended_transfer_timeline_matches_slow(monkeypatch):
    fast, fast_now = _burst_timeline(monkeypatch, slow=False)
    slow, slow_now = _burst_timeline(monkeypatch, slow=True)
    assert fast == slow
    assert fast_now == slow_now


def test_verb_storm_matches_slow(monkeypatch):
    """Many clients hammering one target: mixed contended/uncontended
    verb legs must complete at identical instants in both modes."""
    from repro.net import Cluster

    def run(slow):
        monkeypatch.setenv("REPRO_SLOW_KERNEL", "1" if slow else "0")
        cluster = Cluster(n_nodes=4, seed=0)
        region = cluster.nodes[0].memory.register(256, name="word")
        key = region.remote_key()
        env = cluster.env
        log = []

        def client(env, nic, ident):
            for i in range(20):
                old = yield nic.faa_key(key, 8 * ident, 1)
                log.append((env.now, ident, old))
                yield nic.write_key(key, b"x" * 8, 8 * ident)
                data = yield nic.read_key(key, 8 * ident, 8)
                log.append((env.now, ident, data))

        for n in range(1, 4):
            env.process(client(env, cluster.nodes[n].nic, n - 1))
        env.run()
        return log, env.now

    fast, slow = run(False), run(True)
    assert fast == slow


# ---------------------------------------------------------------------------
# verb failure semantics on the fast path
# ---------------------------------------------------------------------------

def test_fast_verb_protection_error_delivered_to_waiter(monkeypatch):
    from repro.errors import ProtectionError
    from repro.net import Cluster

    def run(slow):
        monkeypatch.setenv("REPRO_SLOW_KERNEL", "1" if slow else "0")
        cluster = Cluster(n_nodes=2, seed=0)
        region = cluster.nodes[1].memory.register(64, name="m")
        key = region.remote_key()
        env = cluster.env
        seen = []

        def client(env):
            nic = cluster.nodes[0].nic
            try:
                yield nic.cas(key.node, key.addr, key.rkey ^ 1, 0, 1)
            except ProtectionError:
                seen.append(env.now)

        env.process(client(env))
        env.run()
        return seen

    assert run(False) == run(True) != []


def test_fast_verb_unknown_node_fails_like_slow(monkeypatch):
    from repro.errors import ConfigError
    from repro.net import Cluster

    def run(slow):
        monkeypatch.setenv("REPRO_SLOW_KERNEL", "1" if slow else "0")
        cluster = Cluster(n_nodes=2, seed=0)
        env = cluster.env
        caught = []

        def client(env):
            try:
                yield cluster.nodes[0].nic.faa(7, 0x10000, 1, 1)
            except ConfigError:
                caught.append(env.now)

        env.process(client(env))
        env.run()
        return caught

    assert run(False) == run(True) != []


def test_unwatched_fast_verb_crash_surfaces(monkeypatch):
    """An unobserved failing verb must raise, same as a crashed process."""
    from repro.errors import ProtectionError
    from repro.net import Cluster

    monkeypatch.setenv("REPRO_SLOW_KERNEL", "0")
    cluster = Cluster(n_nodes=2, seed=0)
    cluster.nodes[0].nic.rdma_write(1, 0xDEAD, 1, b"oops")
    with pytest.raises(ProtectionError):
        cluster.env.run()


# ---------------------------------------------------------------------------
# NIC polling stays allocation-free
# ---------------------------------------------------------------------------

def test_pending_and_try_recv_do_not_create_queues():
    from repro.net import Cluster

    cluster = Cluster(n_nodes=2, seed=0)
    nic = cluster.nodes[0].nic
    assert nic.pending(tag="never-used") == 0
    assert nic.try_recv(tag="never-used") == (False, None)
    assert nic._recv_queues == {}


# ---------------------------------------------------------------------------
# scenario fingerprints: byte-identical exports
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["locks", "ddss", "flow", "chaos"])
def test_scenario_export_identical_fast_vs_slow(monkeypatch, name):
    from repro.obs.scenarios import run_scenario

    exports = []
    for slow in (False, True):
        monkeypatch.setenv("REPRO_SLOW_KERNEL", "1" if slow else "0")
        obs = run_scenario(name, seed=0, sanitize=True, strict=False)
        exports.append(obs.export_json())
    assert exports[0] == exports[1]


def test_negative_timeout_still_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)
