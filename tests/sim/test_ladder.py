"""Property tests for the ladder-queue agenda (DESIGN.md §14).

The agenda contract is a total order on ``(when, seq)``: entries fire
in nondecreasing ``when``, ties broken by schedule order.  The ladder
kernel implements it with a bucketed window over the near future plus
an overflow heap; these tests drive randomized schedule/pop
interleavings through all three kernels (ladder / heap / slow) and
diff the firing order against a reference model that simply sorts the
scheduled ``(when, seq)`` pairs.

Window mode only engages past ``_HEAPMAX`` outstanding entries (small
agendas stay on the bare binary heap), so the randomized workloads
deliberately hold thousands of entries in flight, and the boundary
tests steer entries to both sides of the live window limit.
"""

import random

import pytest

from repro.sim import Environment
from repro.sim.core import _HEAPMAX, _INF, SimulationError


def _make_env(monkeypatch, kernel: str) -> Environment:
    monkeypatch.delenv("REPRO_SLOW_KERNEL", raising=False)
    monkeypatch.delenv("REPRO_HEAP_AGENDA", raising=False)
    if kernel == "slow":
        monkeypatch.setenv("REPRO_SLOW_KERNEL", "1")
    elif kernel == "heap":
        monkeypatch.setenv("REPRO_HEAP_AGENDA", "1")
    else:
        assert kernel == "ladder"
    env = Environment()
    assert env._ladder is (kernel == "ladder")
    return env


# ---------------------------------------------------------------------------
# reference-model identity on randomized interleavings
# ---------------------------------------------------------------------------

def _delay(rng):
    """A delay mix with ties, narrow bands, bursts and far spikes."""
    r = rng.random()
    if r < 0.25:
        return rng.randrange(8) * 0.5      # coarse grid -> lots of ties
    if r < 0.55:
        return 0.5 + rng.random() * 1.5    # narrow band
    if r < 0.85:
        return rng.random() * 1000.0       # uniform
    if r < 0.95:
        return 0.0                         # same-instant
    return rng.choice([5_000.0, 100_000.0])  # far-future spike


def _scripted_run(env, seed, n_initial, n_total):
    """Self-rescheduling ``_schedule_call`` workload; returns the fired
    id sequence and the ``(when, seq, id)`` schedule log."""
    rng = random.Random(seed)
    fired = []
    scheduled = []
    left = [n_total]
    next_id = [0]

    def schedule(delay):
        ident = next_id[0]
        next_id[0] = ident + 1
        when = env._now + delay
        env._schedule_call(when, lambda i=ident: fire(i))
        # _schedule_call assigns seq = env._seq + 1 and stores it back,
        # so reading _seq right after the call captures this entry's seq.
        scheduled.append((when, env._seq, ident))

    def fire(ident):
        fired.append(ident)
        left[0] -= 1
        if left[0] > 0:
            schedule(_delay(rng))
            if rng.random() < 0.05:  # occasional burst
                for _ in range(min(8, left[0])):
                    schedule(rng.choice([0.0, 2.5, 2.5, 7.0]))

    for _ in range(n_initial):
        schedule(_delay(rng))
    env.run()
    return fired, scheduled


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_pop_order_matches_sorted_reference(monkeypatch, seed):
    """Ladder firing order == the schedule log sorted by ``(when, seq)``.

    3000 initial entries force window mode (``> _HEAPMAX``); the delay
    mix spans ties, bands, bursts and overflow-tier spikes.
    """
    env = _make_env(monkeypatch, "ladder")
    fired, scheduled = _scripted_run(env, seed, n_initial=3000,
                                     n_total=12_000)
    assert len(fired) >= 12_000
    expected = [ident for _w, _s, ident in sorted(scheduled)]
    assert fired == expected


@pytest.mark.parametrize("seed", [0, 1])
def test_three_kernels_fire_identically(monkeypatch, seed):
    """ladder == heap == slow on the randomized workload."""
    runs = {}
    for kernel in ("ladder", "heap", "slow"):
        env = _make_env(monkeypatch, kernel)
        fired, _ = _scripted_run(env, seed, n_initial=2000, n_total=8000)
        runs[kernel] = (fired, env.now)
    assert runs["ladder"] == runs["heap"] == runs["slow"]


def test_interleaved_step_and_schedule(monkeypatch):
    """Popping via ``step()`` between schedules preserves the order."""
    rng = random.Random(42)
    env = _make_env(monkeypatch, "ladder")
    fired = []
    scheduled = []
    for i in range(4000):
        when = env._now + _delay(rng)
        env._schedule_call(when, lambda i=i: fired.append(i))
        scheduled.append((when, env._seq, i))
        if i % 3 == 0 and env._pending():
            env.step()
    env.run()
    assert fired == [i for _w, _s, i in sorted(scheduled)]


# ---------------------------------------------------------------------------
# ties and rejection
# ---------------------------------------------------------------------------

def test_same_instant_ties_fire_fifo(monkeypatch):
    """Equal ``when`` (exact float ties) fire in schedule order —
    including a burst wide enough to exercise batch dispatch."""
    env = _make_env(monkeypatch, "ladder")
    fired = []
    # enough backlog for window mode, all at 3 distinct instants
    for i in range(3 * (_HEAPMAX + 200)):
        when = float(1 + i % 3)
        env._schedule_call(when, lambda i=i: fired.append(i))
    env.run()
    expected = sorted(range(len(fired)), key=lambda i: (i % 3, i))
    assert fired == expected
    assert env.now == 3.0


@pytest.mark.parametrize("kernel", ["ladder", "heap", "slow"])
def test_negative_delay_rejected(monkeypatch, kernel):
    env = _make_env(monkeypatch, kernel)
    with pytest.raises(SimulationError, match="negative timeout delay"):
        env.timeout(-1.0)
    with pytest.raises(SimulationError, match="negative timeout delay"):
        env.timeout(-1e-12, value="x")


# ---------------------------------------------------------------------------
# overflow-tier promotion boundaries
# ---------------------------------------------------------------------------

def _force_window(env):
    """Push the env into window mode and return the live limit."""
    rng = random.Random(9)
    for i in range(_HEAPMAX + 512):
        env._schedule_call(10.0 + rng.random() * 100.0, lambda: None)
    # One step makes the kernel notice the backlog and rebase.
    env.step()
    assert env._llimit != -_INF, "window mode should be active"
    return env._llimit


def test_window_limit_splits_tiers(monkeypatch):
    """Pushes land windowed strictly below the limit, overflow at or
    above it, and both sides still fire in global order."""
    env = _make_env(monkeypatch, "ladder")
    limit = _force_window(env)
    heap_before = len(env._heap)
    count_before = env._lcount
    fired = []

    env._schedule_call(limit, lambda: fired.append("at-limit"))
    assert len(env._heap) == heap_before + 1      # promoted to overflow
    env._schedule_call(limit * 1.5, lambda: fired.append("far"))
    assert len(env._heap) == heap_before + 2
    just_below = limit - 1e-9
    assert just_below < limit
    env._schedule_call(just_below, lambda: fired.append("below"))
    assert env._lcount == count_before + 1        # stayed windowed
    env.run()
    assert fired == ["below", "at-limit", "far"]
    assert env.now == limit * 1.5


def test_overflow_promotion_preserves_order(monkeypatch):
    """Entries that sat in the overflow tier across a rebase fire in
    exact ``(when, seq)`` order relative to windowed entries."""
    env = _make_env(monkeypatch, "ladder")
    rng = random.Random(17)
    fired = []
    scheduled = []
    # Two far-apart dense bands: the first rebase windows band one and
    # leaves band two in overflow; draining band one forces a second
    # rebase that promotes band two.
    for i in range(2 * _HEAPMAX):
        when = rng.random() * 50.0 if i % 2 else 10_000.0 + rng.random() * 50.0
        env._schedule_call(when, lambda i=i: fired.append(i))
        scheduled.append((when, env._seq, i))
    env.run()
    assert fired == [i for _w, _s, i in sorted(scheduled)]


def test_drained_window_returns_to_direct_mode(monkeypatch):
    """After the backlog drains the agenda drops back to the bare heap
    (direct mode) and keeps firing correctly."""
    env = _make_env(monkeypatch, "ladder")
    _force_window(env)
    env.run()
    assert env._llimit == -_INF and env._lcount == 0
    fired = []
    env._schedule_call(env._now + 5.0, lambda: fired.append("tail"))
    env.run()
    assert fired == ["tail"]
