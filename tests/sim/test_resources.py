"""Unit tests for Store, Resource and Gate."""

import pytest

from repro.sim import Environment, Gate, Resource, SimulationError, Store


def run(env, gen):
    p = env.process(gen)
    env.run()
    return p.value


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)

        def proc(env):
            yield store.put("x")
            item = yield store.get()
            return item

        assert run(env, proc(env)) == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def consumer(env):
            item = yield store.get()
            return (env.now, item)

        def producer(env):
            yield env.timeout(9.0)
            yield store.put("late")

        c = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert c.value == (9.0, "late")

    def test_fifo_ordering_of_items(self):
        env = Environment()
        store = Store(env)

        def proc(env):
            for i in range(4):
                yield store.put(i)
            got = []
            for _ in range(4):
                got.append((yield store.get()))
            return got

        assert run(env, proc(env)) == [0, 1, 2, 3]

    def test_fifo_ordering_of_getters(self):
        env = Environment()
        store = Store(env)
        arrivals = []

        def getter(env, tag):
            item = yield store.get()
            arrivals.append((tag, item))

        for tag in range(3):
            env.process(getter(env, tag))

        def producer(env):
            yield env.timeout(1.0)
            for i in "abc":
                yield store.put(i)

        env.process(producer(env))
        env.run()
        assert arrivals == [(0, "a"), (1, "b"), (2, "c")]

    def test_capacity_backpressure(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put("first")
            log.append(("put-first", env.now))
            yield store.put("second")  # must wait for consumer
            log.append(("put-second", env.now))

        def consumer(env):
            yield env.timeout(5.0)
            item = yield store.get()
            log.append(("got", item, env.now))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert ("put-first", 0.0) in log
        assert ("got", "first", 5.0) in log
        assert ("put-second", 5.0) in log

    def test_try_put_try_get(self):
        env = Environment()
        store = Store(env, capacity=1)
        assert store.try_put("a") is True
        assert store.try_put("b") is False
        ok, item = store.try_get()
        assert (ok, item) == (True, "a")
        ok, item = store.try_get()
        assert ok is False

    def test_zero_capacity_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env, capacity=0)


class TestResource:
    def test_mutual_exclusion(self):
        env = Environment()
        res = Resource(env, capacity=1)
        active = []
        overlaps = []

        def worker(env, tag):
            yield res.acquire()
            if active:
                overlaps.append(tag)
            active.append(tag)
            yield env.timeout(10.0)
            active.remove(tag)
            res.release()

        for tag in range(5):
            env.process(worker(env, tag))
        env.run()
        assert overlaps == []
        assert env.now == 50.0  # fully serialized

    def test_capacity_parallelism(self):
        env = Environment()
        res = Resource(env, capacity=3)

        def worker(env):
            yield res.acquire()
            yield env.timeout(10.0)
            res.release()

        for _ in range(6):
            env.process(worker(env))
        env.run()
        assert env.now == 20.0  # two waves of three

    def test_fifo_handoff(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def worker(env, tag):
            yield res.acquire()
            order.append(tag)
            yield env.timeout(1.0)
            res.release()

        for tag in range(4):
            env.process(worker(env, tag))
        env.run()
        assert order == [0, 1, 2, 3]

    def test_release_without_acquire(self):
        env = Environment()
        res = Resource(env)
        with pytest.raises(SimulationError):
            res.release()

    def test_try_acquire(self):
        env = Environment()
        res = Resource(env, capacity=1)
        assert res.try_acquire() is True
        assert res.try_acquire() is False
        res.release()
        assert res.try_acquire() is True


class TestGate:
    def test_open_releases_all_waiters(self):
        env = Environment()
        gate = Gate(env)
        done = []

        def waiter(env, tag):
            yield gate.wait()
            done.append((tag, env.now))

        for tag in range(3):
            env.process(waiter(env, tag))

        def opener(env):
            yield env.timeout(4.0)
            gate.open()

        env.process(opener(env))
        env.run()
        assert done == [(0, 4.0), (1, 4.0), (2, 4.0)]

    def test_wait_on_open_gate_is_immediate(self):
        env = Environment()
        gate = Gate(env, is_open=True)

        def waiter(env):
            yield gate.wait()
            return env.now

        p = env.process(waiter(env))
        env.run()
        assert p.value == 0.0

    def test_close_reblocks(self):
        env = Environment()
        gate = Gate(env, is_open=True)
        gate.close()
        ev = gate.wait()
        assert not ev.triggered
        gate.open()
        assert ev.triggered
