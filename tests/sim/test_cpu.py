"""Unit tests for the processor-sharing CPU model."""

import pytest

from repro.sim import CPU, Environment, SimulationError


def finish_time(env, cpu, work):
    ev = cpu.run(work)
    env.run_until_event(ev)
    return env.now


def test_single_job_runs_at_full_speed():
    env = Environment()
    cpu = CPU(env, cores=1)
    assert finish_time(env, cpu, 100.0) == pytest.approx(100.0)


def test_two_jobs_share_one_core():
    env = Environment()
    cpu = CPU(env, cores=1)
    e1 = cpu.run(100.0)
    e2 = cpu.run(100.0)
    env.run()
    # Equal jobs on one core each take 200us under PS.
    assert env.now == pytest.approx(200.0)
    assert e1.triggered and e2.triggered


def test_jobs_fit_in_cores_run_unimpeded():
    env = Environment()
    cpu = CPU(env, cores=4)
    for _ in range(4):
        cpu.run(50.0)
    env.run()
    assert env.now == pytest.approx(50.0)


def test_short_job_finishes_first_then_long_speeds_up():
    env = Environment()
    cpu = CPU(env, cores=1)
    long = cpu.run(100.0)
    short = cpu.run(10.0)
    times = {}
    long.add_callback(lambda e: times.setdefault("long", env.now))
    short.add_callback(lambda e: times.setdefault("short", env.now))
    env.run()
    # Short: 10us demand at rate 1/2 -> done at t=20.
    # Long: served 10us by t=20, remaining 90 at full rate -> t=110.
    assert times["short"] == pytest.approx(20.0)
    assert times["long"] == pytest.approx(110.0)


def test_late_arrival_slows_existing_job():
    env = Environment()
    cpu = CPU(env, cores=1)

    def late(env):
        yield env.timeout(50.0)
        yield cpu.run(100.0)
        return env.now

    first = cpu.run(100.0)
    times = {}
    first.add_callback(lambda e: times.setdefault("first", env.now))
    p = env.process(late(env))
    env.run()
    # First runs alone 50us (50 remaining), then shares: +100us -> t=150.
    assert times["first"] == pytest.approx(150.0)
    # Latecomer: by t=150 it has received 50us, then runs alone 50 -> t=200.
    assert p.value == pytest.approx(200.0)


def test_background_load_slows_jobs():
    env = Environment()
    cpu = CPU(env, cores=1)
    cpu.set_background(9)
    # Job gets 1/10th of the core.
    assert finish_time(env, cpu, 10.0) == pytest.approx(100.0)


def test_background_load_on_multicore():
    env = Environment()
    cpu = CPU(env, cores=2)
    cpu.set_background(3)
    # 4 competitors on 2 cores -> rate 1/2.
    assert finish_time(env, cpu, 10.0) == pytest.approx(20.0)


def test_zero_work_completes_immediately():
    env = Environment()
    cpu = CPU(env, cores=1)
    ev = cpu.run(0.0)
    env.run()
    assert ev.triggered
    assert env.now == 0.0


def test_negative_work_rejected():
    env = Environment()
    cpu = CPU(env, cores=1)
    with pytest.raises(SimulationError):
        cpu.run(-1.0)


def test_active_jobs_and_load():
    env = Environment()
    cpu = CPU(env, cores=2)
    assert cpu.active_jobs == 0
    cpu.run(100.0)
    cpu.set_background(3)
    assert cpu.active_jobs == 4
    assert cpu.load == pytest.approx(2.0)


def test_cancel_job():
    env = Environment()
    cpu = CPU(env, cores=1)
    job = cpu.submit(100.0)
    other = cpu.run(100.0)
    failures = []
    job.done.add_callback(lambda e: failures.append(e.ok))
    job.cancel()
    done_at = {}
    other.add_callback(lambda e: done_at.setdefault("t", env.now))
    env.run()
    assert failures == [False]
    # Other job now runs alone and must finish at t=100 (a stale wake-up
    # timer may keep the agenda alive past that; only completion matters).
    assert other.triggered
    assert done_at["t"] == pytest.approx(100.0)


def test_utilization_accounting():
    env = Environment()
    cpu = CPU(env, cores=2)
    cpu.run(100.0)  # one job on two cores: 50% busy
    env.run()
    assert cpu.utilization() == pytest.approx(0.5)


def test_work_conservation_many_equal_jobs():
    env = Environment()
    cpu = CPU(env, cores=1)
    n = 8
    for _ in range(n):
        cpu.run(25.0)
    env.run()
    # Total demand 200us on one core -> makespan exactly 200us.
    assert env.now == pytest.approx(200.0)
    assert cpu.utilization() == pytest.approx(1.0)


def test_bad_core_count():
    env = Environment()
    with pytest.raises(SimulationError):
        CPU(env, cores=0)
