"""Unit tests for measurement helpers."""

import math

import pytest

from repro.sim.trace import Tally, TimeSeries, TimeWeighted, percentile


class TestTally:
    def test_mean_min_max(self):
        t = Tally()
        for x in [1.0, 2.0, 3.0, 4.0]:
            t.add(x)
        assert t.count == 4
        assert t.mean == pytest.approx(2.5)
        assert t.min == 1.0
        assert t.max == 4.0

    def test_variance_matches_textbook(self):
        t = Tally()
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            t.add(x)
        assert t.variance == pytest.approx(32.0 / 7.0)
        assert t.stdev == pytest.approx(math.sqrt(32.0 / 7.0))

    def test_empty_tally_mean_is_nan(self):
        assert math.isnan(Tally().mean)

    def test_single_sample_variance_zero(self):
        t = Tally()
        t.add(3.0)
        assert t.variance == 0.0


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_extremes(self):
        vals = list(range(1, 101))
        assert percentile(vals, 0) == 1
        assert percentile(vals, 100) == 100
        assert percentile(vals, 99) == 99

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestTimeSeries:
    def test_record_and_window_rate(self):
        ts = TimeSeries()
        for t in [1.0, 2.0, 3.0, 11.0]:
            ts.record(t, 1.0)
        assert ts.window_rate(0.0, 10.0) == pytest.approx(0.3)

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_last(self):
        ts = TimeSeries()
        ts.record(1.0, 10.0)
        ts.record(2.0, 20.0)
        assert ts.last() == (2.0, 20.0)

    def test_last_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().last()


class TestTimeWeighted:
    def test_piecewise_constant_mean(self):
        tw = TimeWeighted(t0=0.0, v0=0.0)
        tw.set(10.0, 4.0)   # 0 for [0,10)
        tw.set(20.0, 0.0)   # 4 for [10,20)
        assert tw.mean(40.0) == pytest.approx(1.0)

    def test_backwards_time_rejected(self):
        tw = TimeWeighted()
        tw.set(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.set(4.0, 2.0)
