"""Tests for kernel stats, the five monitoring schemes and the LB."""

import pytest

from repro.errors import MonitorError
from repro.net import Cluster
from repro.monitor import (
    KernelStats,
    MONITOR_SCHEMES,
    MonitoredLoadBalancer,
    RdmaAsyncMonitor,
    RdmaSyncMonitor,
    SocketAsyncMonitor,
    SocketSyncMonitor,
)
from repro.monitor.experiments import accuracy_trace, lb_throughput


def build(scheme_cls, n_back=2, seed=0, **kw):
    cluster = Cluster(n_nodes=n_back + 1, seed=seed)
    front = cluster.nodes[0]
    backs = cluster.nodes[1:]
    stats = {b.id: KernelStats(b) for b in backs}
    monitor = scheme_cls(front, stats, **kw)
    return cluster, front, backs, stats, monitor


class TestKernelStats:
    def test_reflects_cpu_background(self):
        cluster = Cluster(n_nodes=1, seed=0)
        ks = KernelStats(cluster.nodes[0])
        cluster.nodes[0].cpu.set_background(7)
        cluster.env.run(until=200.0)  # let the refresher fire
        snap = ks.snapshot()
        assert snap["n_threads"] == 7
        assert snap["load"] == pytest.approx(3.5)  # 7 threads / 2 cores

    def test_decode_rejects_short_blob(self):
        with pytest.raises(MonitorError):
            KernelStats.decode(b"short")

    def test_updates_counter_increases(self):
        cluster = Cluster(n_nodes=1, seed=0)
        ks = KernelStats(cluster.nodes[0], refresh_us=10.0)
        cluster.env.run(until=1000.0)
        assert ks.snapshot()["updates"] > 50

    def test_bad_refresh_rejected(self):
        cluster = Cluster(n_nodes=1, seed=0)
        with pytest.raises(MonitorError):
            KernelStats(cluster.nodes[0], refresh_us=0)


class TestSchemes:
    @pytest.mark.parametrize("name", sorted(MONITOR_SCHEMES))
    def test_query_reports_load(self, name):
        cluster, front, backs, stats, monitor = build(
            MONITOR_SCHEMES[name])
        backs[0].cpu.set_background(9)

        def app(env):
            yield env.timeout(20_000.0)  # async schemes prime caches
            report = yield monitor.query(backs[0].id)
            return report

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p)
        if monitor.NEEDS_DAEMON:
            # the socket daemons' own collection thread shows up in the
            # measurement — the intrusiveness the paper calls out
            assert p.value["n_threads"] in (9, 10)
        else:
            assert p.value["n_threads"] == 9

    def test_rdma_does_not_perturb_what_it_measures(self):
        """Paper goal (ii): no extra process on the monitored node.  The
        socket daemon inflates the thread count it reports; RDMA reads
        the kernel's view untouched."""
        cluster, front, backs, stats, monitor = build(SocketSyncMonitor)
        backs[0].cpu.set_background(9)

        def app(env):
            report = yield monitor.query(backs[0].id)
            return report

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p)
        assert p.value["n_threads"] == 10  # 9 app threads + the daemon

    def test_rdma_sync_costs_no_backend_cpu(self):
        cluster, front, backs, stats, monitor = build(RdmaSyncMonitor)

        def app(env):
            for _ in range(100):
                yield monitor.query(backs[0].id)

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p)
        assert backs[0].cpu.utilization() == 0.0

    def test_socket_sync_costs_backend_cpu(self):
        cluster, front, backs, stats, monitor = build(SocketSyncMonitor)

        def app(env):
            for _ in range(50):
                yield monitor.query(backs[0].id)

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p)
        assert backs[0].cpu.utilization() > 0.0

    def test_socket_sync_latency_inflates_under_load(self):
        def measure(load):
            cluster, front, backs, stats, monitor = build(
                SocketSyncMonitor)
            backs[0].cpu.set_background(load)

            def app(env):
                t0 = env.now
                yield monitor.query(backs[0].id)
                return env.now - t0

            p = cluster.env.process(app(cluster.env))
            cluster.env.run_until_event(p)
            return p.value

        assert measure(30) > 5 * measure(0)

    def test_rdma_sync_latency_independent_of_load(self):
        def measure(load):
            cluster, front, backs, stats, monitor = build(RdmaSyncMonitor)
            backs[0].cpu.set_background(load)

            def app(env):
                t0 = env.now
                yield monitor.query(backs[0].id)
                return env.now - t0

            p = cluster.env.process(app(cluster.env))
            cluster.env.run_until_event(p)
            return p.value

        assert measure(30) == pytest.approx(measure(0), rel=0.05)

    def test_async_view_is_stale_between_polls(self):
        cluster, front, backs, stats, monitor = build(
            RdmaAsyncMonitor, period_us=10_000.0)
        cluster.env.run(until=15_000.0)  # one poll happened
        backs[0].cpu.set_background(5)   # change right after
        cluster.env.run(until=16_000.0)
        assert monitor.view(backs[0].id)["n_threads"] == 0  # still stale
        cluster.env.run(until=26_000.0)
        assert monitor.view(backs[0].id)["n_threads"] == 5

    def test_empty_backend_set_rejected(self):
        cluster = Cluster(n_nodes=1, seed=0)
        with pytest.raises(MonitorError):
            RdmaSyncMonitor(cluster.nodes[0], {})


class TestLoadBalancer:
    def test_picks_least_loaded(self):
        cluster, front, backs, stats, monitor = build(RdmaSyncMonitor,
                                                      n_back=3)
        backs[0].cpu.set_background(10)
        backs[1].cpu.set_background(2)
        backs[2].cpu.set_background(6)
        cluster.env.run(until=200.0)
        lb = MonitoredLoadBalancer(monitor, outstanding_weight=0.0)

        def app(env):
            choice = yield lb.pick()
            return choice

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p)
        assert p.value == backs[1].id

    def test_outstanding_spreads_concurrent_picks(self):
        cluster, front, backs, stats, monitor = build(RdmaAsyncMonitor,
                                                      n_back=3)
        cluster.env.run(until=2_000.0)
        lb = MonitoredLoadBalancer(monitor, outstanding_weight=1.0)
        picks = [lb.pick_now() for _ in range(6)]
        # with equal reported load, picks rotate across all three backs
        assert all(picks.count(b.id) == 2 for b in backs)

    def test_done_rebalances(self):
        cluster, front, backs, stats, monitor = build(RdmaAsyncMonitor,
                                                      n_back=2)
        cluster.env.run(until=2_000.0)
        lb = MonitoredLoadBalancer(monitor, outstanding_weight=1.0)
        first = lb.pick_now()
        second = lb.pick_now()
        assert first != second
        lb.done(first)
        assert lb.pick_now() == first

    def test_done_without_pick_rejected(self):
        cluster, front, backs, stats, monitor = build(RdmaAsyncMonitor)
        lb = MonitoredLoadBalancer(monitor)
        with pytest.raises(MonitorError):
            lb.done(backs[0].id)


class TestExperiments:
    def test_accuracy_rdma_sync_is_exact(self):
        r = accuracy_trace("rdma-sync", duration_us=60_000)
        assert r.mean_abs_deviation == 0.0
        assert len(r.samples) > 10

    def test_accuracy_socket_async_deviates(self):
        r_sock = accuracy_trace("socket-async", duration_us=60_000)
        r_rdma = accuracy_trace("rdma-sync", duration_us=60_000)
        assert r_sock.mean_abs_deviation > r_rdma.mean_abs_deviation

    def test_unknown_scheme_rejected(self):
        with pytest.raises(MonitorError):
            accuracy_trace("nope")
        with pytest.raises(MonitorError):
            lb_throughput("nope", 0.9)

    def test_lb_throughput_rdma_beats_socket_async(self):
        base = lb_throughput("socket-async", 0.75, n_sessions=12,
                             measure_us=100_000)
        rdma = lb_throughput("rdma-sync", 0.75, n_sessions=12,
                             measure_us=100_000)
        assert rdma > base
