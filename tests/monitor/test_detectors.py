"""Failure-detector upgrades: heartbeat hysteresis (flap absorption),
the phi-accrual detector, and the quorum gate that fences minority-side
verdicts (split-brain prevention)."""

import pytest

from repro.errors import ConfigError
from repro.net import Cluster
from repro.faults import FaultPlan
from repro.monitor import (HeartbeatDetector, PhiAccrualDetector,
                           QuorumGate)

PERIOD = 500.0
TIMEOUT = 120.0


def build(det_cls, n=4, seed=0, plan=None, **det_kw):
    cluster = Cluster(n_nodes=n, seed=seed)
    inj = cluster.install_faults(plan or FaultPlan())
    front, backs = cluster.nodes[0], cluster.nodes[1:]
    det = det_cls(front, backs, period_us=PERIOD, timeout_us=TIMEOUT,
                  **det_kw)
    return cluster, inj, det


class TestHysteresis:
    """Regression: a flapping node (just past miss_threshold, then
    answering) used to be evicted; hysteresis absorbs the flap."""

    def flap_plan(self, misses):
        # fail exactly `misses` consecutive probes of node 1: probes
        # fire at k*PERIOD, so a verb-fault window covering probes
        # 1..misses does it deterministically
        start = 0.5 * PERIOD
        until = (misses + 0.5) * PERIOD
        return FaultPlan().fail_verbs(1.0, dst=1, start=start,
                                      until=until)

    def test_flap_absorbed_never_reaches_listeners(self):
        cluster, inj, det = build(
            HeartbeatDetector, plan=self.flap_plan(misses=3),
            miss_threshold=3, confirm_misses=1)
        seen = []
        det.subscribe(lambda nid, tr: seen.append((nid, tr)))
        cluster.run(until=10 * PERIOD)
        assert seen == []               # regression: used to be "dead"
        assert det.transitions == []
        assert det.dead_ids == set()
        assert det.flaps_absorbed == 1  # suspect raised, then cleared

    def test_sustained_misses_still_confirm_dead(self):
        cluster, inj, det = build(
            HeartbeatDetector, plan=self.flap_plan(misses=8),
            miss_threshold=3, confirm_misses=1)
        cluster.run(until=6 * PERIOD)
        assert det.is_dead(1)
        assert [tr for _t, nid, tr in det.transitions if nid == 1] \
            == ["dead"]

    def test_zero_confirm_restores_legacy_behaviour(self):
        cluster, inj, det = build(
            HeartbeatDetector, plan=self.flap_plan(misses=3),
            miss_threshold=3, confirm_misses=0)
        cluster.run(until=10 * PERIOD)
        # without hysteresis the same flap is a dead->alive round trip
        assert [tr for _t, _n, tr in det.transitions] == ["dead", "alive"]

    def test_suspects_visible_while_held(self):
        cluster, inj, det = build(
            HeartbeatDetector, plan=self.flap_plan(misses=3),
            miss_threshold=3, confirm_misses=2)
        cluster.run(until=3.6 * PERIOD)
        assert det.suspect_ids == {1}
        cluster.run(until=10 * PERIOD)
        assert det.suspect_ids == set()

    def test_detect_bound_includes_confirmation(self):
        cluster, inj, det = build(HeartbeatDetector, miss_threshold=3,
                                  confirm_misses=1)
        assert det.detect_bound_us() == PERIOD * 5 + TIMEOUT
        cluster2, _, det2 = build(HeartbeatDetector, miss_threshold=3,
                                  confirm_misses=0)
        assert det2.detect_bound_us() == PERIOD * 4 + TIMEOUT

    def test_confirm_validation(self):
        cluster = Cluster(n_nodes=2, seed=0)
        with pytest.raises(ConfigError):
            HeartbeatDetector(cluster.nodes[0], [cluster.nodes[1]],
                              confirm_misses=-1)


class TestPhiAccrual:
    def test_crash_detected_within_bound(self):
        crash_at = 6_000.0
        cluster, inj, det = build(
            PhiAccrualDetector,
            plan=FaultPlan().crash(1, at=crash_at))
        cluster.run(until=crash_at + det.detect_bound_us() + PERIOD)
        assert det.is_dead(1)
        t_dead = [t for t, nid, tr in det.transitions
                  if nid == 1 and tr == "dead"][0]
        assert t_dead <= crash_at + det.detect_bound_us()

    def test_suspect_precedes_dead(self):
        cluster, inj, det = build(
            PhiAccrualDetector, plan=FaultPlan().crash(1, at=5_000.0))
        obs = cluster.observe(sanitize=False)
        cluster.run(until=5_000.0 + det.detect_bound_us() + PERIOD)
        kinds = [e.etype for e in obs.trace.select(prefix="detect.")
                 if e.fields.get("watched") == 1]
        assert "detect.suspect" in kinds and "detect.dead" in kinds
        assert kinds.index("detect.suspect") < kinds.index("detect.dead")

    def test_restart_clears_to_alive(self):
        cluster, inj, det = build(
            PhiAccrualDetector,
            plan=FaultPlan().crash(1, at=5_000.0, restart_at=12_000.0))
        cluster.run(until=20_000.0)
        assert not det.is_dead(1)
        assert [tr for _t, nid, tr in det.transitions if nid == 1] \
            == ["dead", "alive"]

    def test_phi_grows_with_silence(self):
        cluster, inj, det = build(PhiAccrualDetector,
                                  plan=FaultPlan().crash(1, at=4_000.0))
        cluster.run(until=4_100.0)
        early = det.phi(1)
        cluster.run(until=6_500.0)
        assert det.phi(1) > early
        assert det.phi(2) < 1.0  # healthy node stays unsuspicious

    def test_slow_link_widens_tolerance_no_false_dead(self):
        """The adaptive property: a gray-slow node (probes delayed but
        arriving) must not be declared dead."""
        cluster, inj, det = build(
            PhiAccrualDetector,
            plan=FaultPlan().slow_node(1, 6.0, start=4_000.0,
                                       until=20_000.0))
        cluster.run(until=30_000.0)
        dead = [nid for _t, nid, tr in det.transitions if tr == "dead"]
        assert dead == []

    def test_threshold_validation(self):
        cluster = Cluster(n_nodes=2, seed=0)
        with pytest.raises(ConfigError):
            PhiAccrualDetector(cluster.nodes[0], [cluster.nodes[1]],
                               suspect_phi=5.0, dead_phi=2.0)
        with pytest.raises(ConfigError):
            PhiAccrualDetector(cluster.nodes[0], [cluster.nodes[1]],
                               window=1)


def gate_build(n=5, seed=0, plan=None, hold_us=PERIOD):
    cluster = Cluster(n_nodes=n, seed=seed)
    inj = cluster.install_faults(plan or FaultPlan())
    front, backs = cluster.nodes[0], cluster.nodes[1:]
    det = PhiAccrualDetector(front, backs, period_us=PERIOD,
                             timeout_us=TIMEOUT)
    gate = QuorumGate(det, hold_us=hold_us)
    return cluster, inj, det, gate


class TestQuorumGate:
    def test_majority_side_forwards_dead_within_hold(self):
        # {0,1,2} | {3,4}: front keeps quorum 3/5, far side dies
        start = 6_000.0
        cluster, inj, det, gate = gate_build(
            plan=FaultPlan().partition([[0, 1, 2], [3, 4]], start=start,
                                       until=1e9))
        bound = det.detect_bound_us() + gate.hold_us + PERIOD
        cluster.run(until=start + bound)
        assert gate.dead_ids == {3, 4}
        assert gate.has_quorum
        assert gate.fenced == []
        assert gate.config_epoch == 2
        for t, _nid, tr in gate.transitions:
            assert tr == "dead" and t <= start + bound

    def test_minority_side_fences_everything(self):
        # {0,1} | {2,3,4}: front lost quorum — verdicts must be fenced
        start = 6_000.0
        cluster, inj, det, gate = gate_build(
            plan=FaultPlan().partition([[0, 1], [2, 3, 4]], start=start,
                                       until=1e9))
        cluster.run(until=start + det.detect_bound_us()
                    + gate.hold_us + 5 * PERIOD)
        assert det.dead_ids == {2, 3, 4}   # inner detector fires...
        assert gate.dead_ids == set()      # ...but nothing is forwarded
        assert not gate.has_quorum
        assert {nid for _t, nid in gate.fenced} == {2, 3, 4}
        assert gate.transitions == []

    def test_heal_flushes_fenced_verdicts_or_clears(self):
        # partition heals: nodes answer probes again, so the parked
        # verdicts must NOT surface as deaths afterwards
        start, until = 6_000.0, 14_000.0
        cluster, inj, det, gate = gate_build(
            plan=FaultPlan().partition([[0, 1], [2, 3, 4]], start=start,
                                       until=until))
        cluster.run(until=until + 5 * PERIOD)
        assert det.dead_ids == set()
        assert gate.dead_ids == set()
        assert [tr for _t, _n, tr in gate.transitions] == []

    def test_real_deaths_during_quorum_loss_forward_after_recovery(self):
        # nodes 3,4 crash for good; a partition then hides 2 as well,
        # costing quorum; when it heals, the still-dead 3,4 forward
        cluster, inj, det, gate = gate_build(
            plan=(FaultPlan()
                  .crash(3, at=4_000.0)
                  .crash(4, at=4_000.0)
                  .partition([[0, 1], [2, 3, 4]], start=4_500.0,
                             until=16_000.0)))
        cluster.run(until=30_000.0)
        assert gate.dead_ids == {3, 4}
        assert not det.is_dead(2) and not gate.is_dead(2)

    def test_oracle_interface_matches_detector(self):
        cluster, inj, det, gate = gate_build()
        assert gate.is_dead(1) is False
        assert gate.dead_ids == set()
        assert gate.n_members == 5 and gate.quorum == 3
        with pytest.raises(ConfigError):
            QuorumGate(det, n_members=0)
