"""Asymmetric cohort lock: cohort discipline, budget, crash recovery.

Generic manager-contract coverage lives in ``test_lock_managers.py``;
these tests pin the ALock-specific properties — cohort classification,
pass-off runs bounded by the cohort budget, FIFO within a pass-off run,
tournament fairness across cohorts, crash-during-handoff recovery, and
cross-kernel byte identity.
"""

import pytest

from repro.dlm import ALockManager, LockMode
from repro.dlm.alock import COHORT_LOCAL, COHORT_REMOTE
from repro.errors import LockError
from repro.faults import FaultPlan
from repro.net import Cluster
from repro.verify import LockOracle, canonical_trace_sha, run_check
from repro.verify.suites import _alock, _kernel
from repro.verify.trace import TraceView, replay_fresh


def _arena(n_clients=12, seed=0, cohort_budget=3, lease_us=None,
           plan=None, horizon=80_000.0, rounds=4):
    cluster = Cluster(n_nodes=5, seed=seed)
    obs = cluster.observe(sanitize=True, strict=False)
    if plan is not None:
        cluster.install_faults(plan)
    kw = {"lease_us": lease_us} if lease_us is not None else {}
    manager = ALockManager(cluster, n_locks=2,
                           cohort_budget=cohort_budget, **kw)
    env = cluster.env
    grants = []

    def worker(env, client, tag):
        yield env.timeout(7.0 * tag)
        for r in range(rounds):
            try:
                yield client.acquire(0, LockMode.EXCLUSIVE)
            except LockError:
                return
            grants.append((tag, env.now))
            yield env.timeout(20.0)
            try:
                yield client.release(0)
            except LockError:
                return
            yield env.timeout(150.0)

    for i in range(n_clients):
        # node 0 hosts the locks => its clients form the local cohort
        client = manager.client(cluster.nodes[i % 5])
        env.process(worker(env, client, i), name=f"alock-{i}")
    env.run(until=horizon)
    return obs, manager, grants


class TestCohorts:
    def test_cohort_classification(self):
        cluster = Cluster(n_nodes=3, seed=0)
        manager = ALockManager(cluster, n_locks=2)
        local = manager.client(cluster.nodes[0])
        remote = manager.client(cluster.nodes[1])
        assert manager.cohort_of(local, 0) == COHORT_LOCAL
        assert manager.cohort_of(remote, 0) == COHORT_REMOTE

    def test_budget_must_be_positive(self):
        cluster = Cluster(n_nodes=2, seed=0)
        with pytest.raises(LockError):
            ALockManager(cluster, n_locks=2, cohort_budget=0)


class TestCohortDiscipline:
    def test_pass_off_runs_respect_budget_and_fifo(self):
        obs, manager, grants = _arena(cohort_budget=3)
        assert len(grants) == 48
        gs = obs.trace.select("lock.grant")
        assert gs
        for g in gs:
            assert g.fields["cohort"] in (COHORT_LOCAL, COHORT_REMOTE)
            assert 0 <= g.fields["chain"] < g.fields["budget"] == 3
        # both cohorts actually won tournaments in this workload
        assert {g.fields["cohort"] for g in gs
                if g.fields["chain"] == 0} == {COHORT_LOCAL,
                                               COHORT_REMOTE}
        # the oracle re-derives budget / chain continuity / no-skip
        view = TraceView.from_obs(obs).require_complete()
        _oracles, violations = replay_fresh(view, [LockOracle])
        assert violations == []
        assert obs.violations() == []

    def test_in_budget_passes_happen(self):
        """The cheap pass-off path is actually exercised (chain > 0)."""
        obs, _manager, _grants = _arena(cohort_budget=4)
        chains = [g.fields["chain"]
                  for g in obs.trace.select("lock.grant")]
        assert max(chains) > 0

    def test_budget_one_degenerates_to_pure_tournament(self):
        obs, _manager, grants = _arena(cohort_budget=1, n_clients=8)
        assert grants
        assert all(g.fields["chain"] == 0
                   for g in obs.trace.select("lock.grant"))
        view = TraceView.from_obs(obs).require_complete()
        _oracles, violations = replay_fresh(view, [LockOracle])
        assert violations == []


class TestCrashDuringHandoff:
    def test_crash_forces_reclaim_and_survivors_progress(self):
        plan = FaultPlan().crash(2, at=400.0)
        obs, manager, grants = _arena(
            n_clients=12, cohort_budget=3, lease_us=400.0, plan=plan,
            rounds=6, horizon=150_000.0)
        assert manager.reclaims, "crash never forced an epoch reclaim"
        post = [t for _tag, t in grants if t > 400.0 + 400.0]
        assert len(post) > 10, "survivors starved after the crash"
        view = TraceView.from_obs(obs).require_complete()
        _oracles, violations = replay_fresh(view, [LockOracle])
        assert violations == []
        assert obs.violations() == []


class TestKernels:
    def test_check_green_on_fast_and_slow(self):
        for kernel in ("fast", "slow"):
            out = run_check("alock", seed=0, kernel=kernel)
            assert out["verdict"] == "ok"
            assert out["oracles"]["locks"]["checked"] > 0

    @pytest.mark.parametrize("seed", [0, 3])
    def test_three_kernel_trace_identity(self, seed):
        shas = set()
        for kernel in ("fast", "heap", "slow"):
            with _kernel(kernel):
                obs = _alock(seed, 6)
            shas.add(canonical_trace_sha(obs.trace_dict()))
        assert len(shas) == 1
