"""Randomized stress tests for the lock managers.

The manager base's safety ledger raises on any grant that violates
mutual exclusion, so driving the protocols through hundreds of random
acquire/hold/release interleavings and reaching quiescence *is* the
correctness assertion.  Hypothesis controls the schedule shape.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net import Cluster
from repro.dlm import (
    DQNLManager,
    LockMode,
    NCoSEDManager,
    SRSLManager,
)

ALL = [SRSLManager, DQNLManager, NCoSEDManager]


def run_schedule(scheme_cls, schedule, n_nodes=6, n_locks=3):
    """Each schedule entry: (node, lock, mode_flag, delay, hold).

    Every actor gets its own client handle (handles are per-application-
    thread and deliberately non-reentrant, like a plain mutex guard).
    """
    cluster = Cluster(n_nodes=n_nodes, seed=0)
    manager = scheme_cls(cluster, n_locks=n_locks)
    grants = []

    def actor(env, idx, entry):
        node_i, lock_i, shared, delay, hold = entry
        client = manager.client(cluster.nodes[node_i % n_nodes])
        mode = (LockMode.SHARED if shared
                and scheme_cls is not DQNLManager else LockMode.EXCLUSIVE)
        yield env.timeout(delay)
        yield client.acquire(lock_i % n_locks, mode)
        grants.append(idx)
        yield env.timeout(hold)
        yield client.release(lock_i % n_locks)

    procs = [cluster.env.process(actor(cluster.env, i, entry))
             for i, entry in enumerate(schedule)]
    done = cluster.env.all_of(procs)
    cluster.env.run_until_event(done, limit=1e9)
    # quiesce stray hand-off traffic, then every lock must be free
    cluster.env.run(until=cluster.env.now + 1e6)
    for lock_id in range(n_locks):
        assert manager.holder_count(lock_id) == 0
    return grants


schedule_entries = st.tuples(
    st.integers(0, 5),            # node
    st.integers(0, 2),            # lock
    st.booleans(),                # shared?
    st.floats(0.0, 500.0),        # start delay
    st.floats(0.0, 300.0),        # hold time
)


@pytest.mark.parametrize("scheme_cls", ALL)
@given(schedule=st.lists(schedule_entries, min_size=2, max_size=14))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_schedules_all_grants_happen_and_locks_free(
        scheme_cls, schedule):
    grants = run_schedule(scheme_cls, schedule)
    assert sorted(grants) == list(range(len(schedule)))


@pytest.mark.parametrize("scheme_cls", ALL)
def test_same_instant_contention_burst(scheme_cls):
    """Sixteen requests for one lock issued at the exact same instant."""
    schedule = [(i % 6, 0, i % 2 == 0, 0.0, 10.0) for i in range(16)]
    grants = run_schedule(scheme_cls, schedule)
    assert len(grants) == 16


@pytest.mark.parametrize("scheme_cls", [NCoSEDManager, SRSLManager])
def test_reader_writer_storm(scheme_cls):
    """Alternating waves of shared and exclusive requests on one lock."""
    schedule = []
    for wave in range(6):
        base = wave * 40.0
        if wave % 2 == 0:
            schedule += [(n, 0, True, base, 60.0) for n in range(4)]
        else:
            schedule += [(5, 0, False, base, 30.0)]
    grants = run_schedule(scheme_cls, schedule)
    assert len(grants) == len(schedule)


class TestNCoSEDChainForwarding:
    def test_long_exclusive_chain_behind_shared_holders(self):
        """Shared holders + a deep exclusive queue exercises the srel
        chain-forwarding path (releases reaching the wrong tail)."""
        cluster = Cluster(n_nodes=10, seed=1)
        manager = NCoSEDManager(cluster, n_locks=1)
        order = []

        def reader(env, client, tag):
            yield client.acquire(0, LockMode.SHARED)
            yield env.timeout(3_000.0)  # hold while exclusives pile up
            yield client.release(0)

        def writer(env, client, tag, delay):
            yield env.timeout(delay)
            yield client.acquire(0, LockMode.EXCLUSIVE)
            order.append(tag)
            yield env.timeout(20.0)
            yield client.release(0)

        procs = []
        for i in (1, 2, 3):
            procs.append(cluster.env.process(
                reader(cluster.env, manager.client(cluster.nodes[i]), i)))
        for j, i in enumerate((4, 5, 6, 7, 8)):
            procs.append(cluster.env.process(
                writer(cluster.env, manager.client(cluster.nodes[i]),
                       i, 100.0 + 50.0 * j)))
        done = cluster.env.all_of(procs)
        cluster.env.run_until_event(done, limit=1e9)
        assert order == [4, 5, 6, 7, 8]  # FIFO through the chain
        cluster.env.run(until=cluster.env.now + 1e5)
        assert manager.raw_word(0) == 0  # word fully retired
