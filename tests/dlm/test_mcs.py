"""RDMA-MCS queue lock: queue/grant order, crash recovery, kernels.

The generic manager contract (mutual exclusion, no starvation, ...) is
covered by the parametrised suite in ``test_lock_managers.py``; these
tests pin down the MCS-specific properties — grant order equals queue
order, a crashed queue member is fenced out by an epoch bump, and the
trace is byte-identical across all three simulation kernels.
"""

import pytest

from repro.dlm import LockMode, MCSManager
from repro.errors import LockError
from repro.faults import FaultPlan
from repro.net import Cluster
from repro.verify import LockOracle, canonical_trace_sha, run_check
from repro.verify.suites import _kernel, _mcs
from repro.verify.trace import TraceView, replay_fresh


def _contend(n_clients=10, seed=0, lease_us=None, plan=None,
             horizon=60_000.0, rounds=3):
    """n_clients contenders on one lock; returns (obs, manager, grants)."""
    cluster = Cluster(n_nodes=5, seed=seed)
    obs = cluster.observe(sanitize=True, strict=False)
    if plan is not None:
        cluster.install_faults(plan)
    kw = {"lease_us": lease_us} if lease_us is not None else {}
    manager = MCSManager(cluster, n_locks=2, **kw)
    env = cluster.env
    grants = []

    def worker(env, client, tag):
        yield env.timeout(10.0 * tag)
        for r in range(rounds):
            try:
                yield client.acquire(0, LockMode.EXCLUSIVE)
            except LockError:
                return
            grants.append((tag, env.now))
            yield env.timeout(25.0)
            try:
                yield client.release(0)
            except LockError:
                return
            yield env.timeout(200.0)

    for i in range(n_clients):
        client = manager.client(cluster.nodes[1 + i % 4])
        env.process(worker(env, client, i), name=f"mcs-{i}")
    env.run(until=horizon)
    return obs, manager, grants


class TestQueueOrder:
    def test_grant_order_equals_queue_order(self):
        """The oracle's MCS check replays clean on a contended run."""
        obs, manager, grants = _contend()
        assert len(grants) == 30
        view = TraceView.from_obs(obs).require_complete()
        _oracles, violations = replay_fresh(view, [LockOracle])
        assert violations == []
        assert obs.violations() == []

    def test_enqueue_records_predecessor(self):
        obs, _manager, _grants = _contend(n_clients=4)
        enqs = obs.trace.select("lock.enqueue")
        assert enqs
        # at least one contender queued behind a real predecessor
        assert any(e.fields.get("prev", 0) != 0 for e in enqs)


class TestCrashDuringHandoff:
    def test_queue_member_crash_is_fenced_and_survivors_progress(self):
        # node 2 dies while its clients sit in MCS queues; the lease
        # reaper bumps the epoch and the survivors keep getting grants
        plan = FaultPlan().crash(2, at=500.0)
        obs, manager, grants = _contend(
            n_clients=10, lease_us=400.0, plan=plan, rounds=6,
            horizon=120_000.0)
        assert manager.reclaims, "crash never forced an epoch reclaim"
        post = [t for _tag, t in grants if t > 500.0 + 400.0]
        assert len(post) > 10, "survivors starved after the crash"
        view = TraceView.from_obs(obs).require_complete()
        _oracles, violations = replay_fresh(view, [LockOracle])
        assert violations == []
        # no grant was ever issued under a fenced (pre-reclaim) epoch
        reclaim_eps = {e.fields["new_ep"]
                       for e in obs.trace.select("lock.reclaim")}
        assert reclaim_eps, "no reclaim events in the trace"

    def test_acquire_on_dead_home_fails_loudly(self):
        plan = FaultPlan().crash(0, at=100.0)  # the home node
        cluster = Cluster(n_nodes=3, seed=1)
        cluster.install_faults(plan)
        manager = MCSManager(cluster, n_locks=2, lease_us=300.0,
                             max_attempts=3)
        client = manager.client(cluster.nodes[1])
        env = cluster.env
        outcome = []

        def app(env):
            yield env.timeout(200.0)
            try:
                yield client.acquire(0)
            except LockError as exc:
                outcome.append(str(exc))

        env.process(app(env), name="dead-home")
        env.run(until=20_000.0)
        assert outcome and "failed" in outcome[0]


class TestKernels:
    def test_check_green_on_fast_and_slow(self):
        for kernel in ("fast", "slow"):
            out = run_check("mcs", seed=0, kernel=kernel)
            assert out["verdict"] == "ok"
            assert out["oracles"]["locks"]["checked"] > 0

    @pytest.mark.parametrize("seed", [0, 3])
    def test_three_kernel_trace_identity(self, seed):
        shas = set()
        for kernel in ("fast", "heap", "slow"):
            with _kernel(kernel):
                obs = _mcs(seed, 6)
            shas.add(canonical_trace_sha(obs.trace_dict()))
        assert len(shas) == 1
