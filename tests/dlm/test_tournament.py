"""Lock-design arena: tournament harness, bench report, CLI, sweep."""

import json

import pytest

from repro.cli import main
from repro.dlm.tournament import SCHEMES, lock_tournament
from repro.errors import LockError


class TestTournament:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_cell_is_oracle_clean(self, scheme):
        stats = lock_tournament(scheme, n_clients=16, alpha=1.0,
                                seed=0, rounds=3)
        assert stats["violations"] == 0
        assert stats["grants"] == 48
        assert stats["failures"] == 0
        assert stats["ops_per_s"] > 0
        assert 0.0 < stats["jain"] <= 1.0

    def test_deterministic(self):
        a = lock_tournament("mcs", n_clients=16, seed=2, rounds=3)
        b = lock_tournament("mcs", n_clients=16, seed=2, rounds=3)
        assert a == b

    def test_offered_schedule_is_scheme_independent(self):
        # same seed, different scheme: identical workload => identical
        # grant totals once every client finishes within the horizon
        a = lock_tournament("srsl", n_clients=16, seed=5, rounds=3)
        b = lock_tournament("dqnl", n_clients=16, seed=5, rounds=3)
        assert a["grants"] == b["grants"]

    @pytest.mark.parametrize("scheme", ["ncosed", "mcs", "alock"])
    def test_chaos_cell_reclaims_and_stays_clean(self, scheme):
        stats = lock_tournament(scheme, n_clients=16, alpha=1.0,
                                chaos="crash", seed=0, rounds=4)
        assert stats["violations"] == 0
        assert stats["grants"] > 0

    def test_unknown_scheme_or_chaos_rejected(self):
        with pytest.raises(LockError):
            lock_tournament("zk", n_clients=4)
        with pytest.raises(LockError):
            lock_tournament("srsl", n_clients=4, chaos="flood")


class TestBenchReport:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.bench.locks import run_locks_suite

        return run_locks_suite(seed=0, levels=(8, 16), alpha=1.0)

    def test_crossover_table_shape(self, report):
        res = report["results"]
        assert res["crossover"]["levels"] == [8, 16]
        for n in (8, 16):
            assert res["crossover"]["winners"][str(n)] in SCHEMES
            for scheme in SCHEMES:
                cell = res["tournament"][f"{scheme}@{n}"]
                assert cell["violations"] == 0
                assert cell["ops_per_s"] > 0
        assert set(res["chaos"]) == set(SCHEMES)
        assert set(res["rates"]) == {f"{s}_ops_per_s" for s in SCHEMES}

    def test_regression_gate(self, report):
        from repro.bench.locks import check_locks_regression

        assert check_locks_regression(report, report) == []
        assert check_locks_regression(report, None) == []
        inflated = json.loads(json.dumps(report))
        inflated["results"]["rates"]["mcs_ops_per_s"] *= 2
        failures = check_locks_regression(report, inflated)
        assert failures and "mcs_ops_per_s" in failures[0]

    def test_write_report_archives(self, report, tmp_path):
        from repro.bench.locks import write_locks_report

        out = tmp_path / "BENCH_locks.json"
        paths = write_locks_report(report, str(out),
                                   results_dir=str(tmp_path / "res"))
        assert len(paths) == 2
        doc = json.loads(out.read_text())
        assert doc["suite"] == "locks"


class TestLocksCLI:
    def test_ls(self, capsys):
        assert main(["locks", "ls"]) == 0
        out = capsys.readouterr().out
        for scheme in SCHEMES:
            assert scheme in out

    def test_run_writes_stats_json(self, tmp_path, capsys):
        path = tmp_path / "stats.json"
        assert main(["locks", "run", "mcs", "--clients", "12",
                     "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "verdict=ok" in out
        doc = json.loads(path.read_text())
        assert doc["scheme"] == "mcs" and doc["violations"] == 0

    def test_bench_deterministic_and_gated(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        base = ["locks", "bench", "--levels", "8", "16", "--alpha",
                "1.0", "--no-archive"]
        assert main(base + ["--out", str(a)]) == 0
        assert main(base + ["--out", str(b),
                            "--baseline", str(a)]) == 0
        assert a.read_text() == b.read_text()
        assert "regression gate passed" in capsys.readouterr().out

    def test_bench_missing_baseline_skips_gate(self, tmp_path, capsys):
        out = tmp_path / "c.json"
        assert main(["locks", "bench", "--levels", "8", "--alpha",
                     "1.0", "--no-archive", "--out", str(out),
                     "--baseline", str(tmp_path / "nope.json")]) == 0
        assert "regression gate skipped" in capsys.readouterr().out


class TestLabSweep:
    def test_locks_packaged(self):
        from repro.lab.scenarios import SWEEPS, packaged_sweep

        assert "locks" in SWEEPS
        sweep = packaged_sweep("locks")
        assert sweep.grid["scheme"] == list(SCHEMES)

    def test_locks_point_runs(self):
        from repro.lab.scenarios import locks_point

        r = locks_point(scheme="alock", n_clients=12, alpha=1.0, seed=0)
        assert r["violations"] == 0 and r["grants"] > 0
