"""Regression tests for the lock-benchmark harness bugfixes.

Two historical bugs in :mod:`repro.dlm.bench`:

* ``cascade_latency`` crashed on an empty ``max()`` when a scheme
  wedged before granting *any* waiter, and silently reported a partial
  cascade when only *some* waiters were granted.  It must now raise a
  :class:`LockError` naming the scheme and the stuck waiter tokens,
  and report ``n_granted`` on success.
* ``uncontended_latency`` timed the whole loop (including the
  inter-iteration quiesce) with a single pair of timestamps, so the
  quiesce length leaked straight into the reported "latency".  Each
  iteration now carries its own timestamps.
"""

import pytest

from repro.dlm import DQNLManager, LockMode, NCoSEDManager, SRSLManager
from repro.dlm.base import LockClient, LockManagerBase
from repro.dlm.bench import cascade_latency, uncontended_latency
from repro.errors import LockError


class _WedgedClient(LockClient):
    """Grants the first acquire, then parks every later one forever."""

    def _acquire(self, lock_id, mode):
        if self.manager.granted_once:
            yield self.env.timeout(10.0)
            # spin forever: this waiter is never granted
            while True:
                yield self.env.timeout(1e9)
        self.manager.granted_once = True
        yield self.env.timeout(1.0)
        self._granted(lock_id, mode)

    def _release(self, lock_id):
        yield self.env.timeout(1.0)
        self._released(lock_id)


class _WedgedManager(LockManagerBase):
    """Pathological scheme: only the first acquire ever succeeds."""

    SCHEME = "wedged"

    def __init__(self, cluster, n_locks=4, **kw):
        super().__init__(cluster, n_locks=n_locks, **kw)
        self.granted_once = False

    def client(self, node):
        return _WedgedClient(self, node)


class TestCascadeWedgeDiagnostics:
    def test_total_wedge_raises_instead_of_empty_max(self):
        # every waiter stuck: the old code crashed on max(()) here
        with pytest.raises(LockError) as exc:
            cascade_latency(_WedgedManager, n_waiters=3,
                            mode=LockMode.EXCLUSIVE,
                            grant_timeout_us=5_000.0)
        msg = str(exc.value)
        assert "wedged" in msg
        assert "0/3 waiters granted" in msg

    def test_partial_cascade_is_an_error_not_a_short_report(self):
        # two grants total (holder + first waiter): the cascade then
        # stalls at 1/3 and must be reported as an error, not as a
        # silently short grant_times list
        class _TwoGrantsClient(_WedgedClient):
            def _acquire(self, lock_id, mode):
                if self.manager.granted_once >= 2:
                    yield self.env.timeout(10.0)
                    while True:
                        yield self.env.timeout(1e9)
                self.manager.granted_once += 1
                # wait for the current holder to drain first
                while self.manager.holder_count(lock_id):
                    yield self.env.timeout(5.0)
                self._granted(lock_id, mode)

        class _TwoGrants(LockManagerBase):
            SCHEME = "twogrants"

            def __init__(self, cluster, n_locks=4, **kw):
                super().__init__(cluster, n_locks=n_locks, **kw)
                self.granted_once = 0

            def client(self, node):
                return _TwoGrantsClient(self, node)

        with pytest.raises(LockError) as exc:
            cascade_latency(_TwoGrants, n_waiters=3,
                            mode=LockMode.EXCLUSIVE,
                            grant_timeout_us=5_000.0)
        msg = str(exc.value)
        assert "1/3 waiters granted" in msg
        # the stuck waiters are named with their tokens
        assert "stuck" in msg and "tokens" in msg

    @pytest.mark.parametrize("scheme_cls",
                             [SRSLManager, DQNLManager, NCoSEDManager])
    def test_healthy_scheme_reports_full_cascade(self, scheme_cls):
        timings = cascade_latency(scheme_cls, n_waiters=4,
                                  mode=LockMode.EXCLUSIVE)
        assert timings["n_granted"] == timings["n_waiters"] == 4
        assert timings["cascade_us"] > 0
        assert len(timings["grant_times"]) == 4


class TestUncontendedPerIterationTiming:
    @pytest.mark.parametrize("scheme_cls",
                             [SRSLManager, DQNLManager, NCoSEDManager])
    def test_quiesce_does_not_leak_into_latency(self, scheme_cls):
        # the old single-timestamp loop reported ~quiesce_us per iter;
        # with per-iteration timestamps the result is quiesce-invariant
        short = uncontended_latency(scheme_cls, quiesce_us=100.0)
        long = uncontended_latency(scheme_cls, quiesce_us=400.0)
        assert short == pytest.approx(long)
        assert short < 100.0  # a handful of RTTs, nowhere near quiesce
