"""Correctness tests for all three lock managers.

The manager base keeps an independent safety ledger that raises on any
grant violating mutual exclusion, so simply *running* these scenarios is
itself an invariant check.
"""

import pytest

from repro.errors import LockError
from repro.net import Cluster
from repro.dlm import (
    ALockManager,
    DQNLManager,
    LockMode,
    MCSManager,
    NCoSEDManager,
    SRSLManager,
)

ALL = [SRSLManager, DQNLManager, NCoSEDManager, MCSManager, ALockManager]
SHARED_CAPABLE = [SRSLManager, NCoSEDManager]


def build(scheme_cls, n_nodes=4, n_locks=8, seed=0):
    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    manager = scheme_cls(cluster, n_locks=n_locks)
    return cluster, manager


def run(cluster, gen, limit=1e9):
    p = cluster.env.process(gen)
    cluster.env.run_until_event(p, limit=limit)
    return p.value


@pytest.mark.parametrize("scheme_cls", ALL)
class TestCommon:
    def test_exclusive_acquire_release(self, scheme_cls):
        cluster, manager = build(scheme_cls)
        client = manager.client(cluster.nodes[1])

        def app(env):
            yield client.acquire(0, LockMode.EXCLUSIVE)
            held = manager.holder_count(0)
            yield client.release(0)
            return held

        assert run(cluster, app(cluster.env)) == 1
        cluster.env.run(until=cluster.env.now + 1e5)
        assert manager.holder_count(0) == 0

    def test_mutual_exclusion_two_clients(self, scheme_cls):
        cluster, manager = build(scheme_cls)
        c1 = manager.client(cluster.nodes[1])
        c2 = manager.client(cluster.nodes[2])
        active, overlaps = [], []

        def worker(env, client, tag):
            yield client.acquire(3, LockMode.EXCLUSIVE)
            if active:
                overlaps.append(tag)
            active.append(tag)
            yield env.timeout(200.0)
            active.remove(tag)
            yield client.release(3)

        def app(env):
            yield env.all_of([
                env.process(worker(env, c1, "a")),
                env.process(worker(env, c2, "b")),
            ])

        run(cluster, app(cluster.env))
        assert overlaps == []

    def test_fifo_like_progress_no_starvation(self, scheme_cls):
        """Eight contenders each get the lock exactly once."""
        cluster, manager = build(scheme_cls, n_nodes=9)
        grants = []

        def worker(env, client, tag):
            yield env.timeout(tag * 5.0)
            yield client.acquire(1, LockMode.EXCLUSIVE)
            grants.append(tag)
            yield env.timeout(10.0)
            yield client.release(1)

        def app(env):
            procs = []
            for i in range(8):
                client = manager.client(cluster.nodes[i + 1])
                procs.append(env.process(worker(env, client, i)))
            yield env.all_of(procs)

        run(cluster, app(cluster.env))
        assert sorted(grants) == list(range(8))

    def test_independent_locks_do_not_interfere(self, scheme_cls):
        cluster, manager = build(scheme_cls)
        c1 = manager.client(cluster.nodes[1])
        c2 = manager.client(cluster.nodes[2])

        def app(env):
            yield c1.acquire(0, LockMode.EXCLUSIVE)
            t0 = env.now
            yield c2.acquire(1, LockMode.EXCLUSIVE)  # different lock
            waited = env.now - t0
            yield c1.release(0)
            yield c2.release(1)
            return waited

        waited = run(cluster, app(cluster.env))
        assert waited < 100.0  # no queuing behind lock 0

    def test_bad_lock_id_rejected(self, scheme_cls):
        cluster, manager = build(scheme_cls, n_locks=4)
        client = manager.client(cluster.nodes[1])
        with pytest.raises(LockError):
            client.acquire(99)

    def test_reacquire_after_release(self, scheme_cls):
        cluster, manager = build(scheme_cls)
        client = manager.client(cluster.nodes[1])

        def app(env):
            for _ in range(5):
                yield client.acquire(2, LockMode.EXCLUSIVE)
                yield client.release(2)
                yield env.timeout(100.0)
            return client.acquires

        assert run(cluster, app(cluster.env)) == 5


@pytest.mark.parametrize("scheme_cls", SHARED_CAPABLE)
class TestSharedSemantics:
    def test_shared_holders_coexist(self, scheme_cls):
        cluster, manager = build(scheme_cls, n_nodes=6)
        peak = []

        def reader(env, client):
            yield client.acquire(0, LockMode.SHARED)
            peak.append(manager.holder_count(0))
            yield env.timeout(500.0)
            yield client.release(0)

        def app(env):
            procs = [env.process(reader(env, manager.client(node)))
                     for node in cluster.nodes[1:5]]
            yield env.all_of(procs)

        run(cluster, app(cluster.env))
        assert max(peak) == 4  # all four readers held simultaneously

    def test_writer_excludes_readers(self, scheme_cls):
        cluster, manager = build(scheme_cls, n_nodes=5)
        writer = manager.client(cluster.nodes[1])
        events = []

        def reader(env, client, tag):
            yield env.timeout(50.0)
            yield client.acquire(0, LockMode.SHARED)
            events.append(("r-grant", tag, env.now))
            yield client.release(0)

        def app(env):
            yield writer.acquire(0, LockMode.EXCLUSIVE)
            procs = [
                env.process(reader(env, manager.client(cluster.nodes[i]), i))
                for i in (2, 3)]
            yield env.timeout(2000.0)
            events.append(("w-release", None, env.now))
            yield writer.release(0)
            yield env.all_of(procs)

        run(cluster, app(cluster.env))
        release_t = [t for kind, _, t in events if kind == "w-release"][0]
        for kind, _, t in events:
            if kind == "r-grant":
                assert t >= release_t

    def test_reader_blocks_writer(self, scheme_cls):
        cluster, manager = build(scheme_cls, n_nodes=4)
        reader = manager.client(cluster.nodes[1])
        writer = manager.client(cluster.nodes[2])
        times = {}

        def app(env):
            yield reader.acquire(0, LockMode.SHARED)

            def writing(env):
                yield env.timeout(20.0)
                yield writer.acquire(0, LockMode.EXCLUSIVE)
                times["w"] = env.now
                yield writer.release(0)

            wproc = env.process(writing(env))
            yield env.timeout(1000.0)
            yield reader.release(0)
            times["r_rel"] = env.now
            yield wproc

        run(cluster, app(cluster.env))
        assert times["w"] >= times["r_rel"]

    def test_interleaved_shared_exclusive_waves(self, scheme_cls):
        """Readers, then a writer, then readers again — strict phases."""
        cluster, manager = build(scheme_cls, n_nodes=8)
        log = []

        def reader(env, client, tag, delay):
            yield env.timeout(delay)
            yield client.acquire(0, LockMode.SHARED)
            log.append(("r", tag, env.now))
            yield env.timeout(300.0)
            yield client.release(0)

        def writer(env, client, delay):
            yield env.timeout(delay)
            yield client.acquire(0, LockMode.EXCLUSIVE)
            log.append(("w", None, env.now))
            yield env.timeout(300.0)
            yield client.release(0)

        def app(env):
            procs = [
                env.process(reader(env, manager.client(cluster.nodes[1]),
                                   1, 0.0)),
                env.process(reader(env, manager.client(cluster.nodes[2]),
                                   2, 10.0)),
                env.process(writer(env, manager.client(cluster.nodes[3]),
                                   100.0)),
                env.process(reader(env, manager.client(cluster.nodes[4]),
                                   4, 200.0)),
            ]
            yield env.all_of(procs)

        run(cluster, app(cluster.env))
        # the writer grant must come after both early readers released
        # and the late reader after the writer: no interleaving violations
        # were raised by the safety ledger, which is the core assertion.
        kinds = [k for k, _, _ in sorted(log, key=lambda e: e[2])]
        assert kinds.count("w") == 1


class TestDQNLSpecifics:
    def test_shared_requests_serialize(self):
        """DQNL treats shared as exclusive: holders never overlap."""
        cluster, manager = build(DQNLManager, n_nodes=6)
        peak = []

        def reader(env, client):
            yield client.acquire(0, LockMode.SHARED)
            peak.append(manager.holder_count(0))
            yield env.timeout(100.0)
            yield client.release(0)

        def app(env):
            procs = [env.process(reader(env, manager.client(node)))
                     for node in cluster.nodes[1:5]]
            yield env.all_of(procs)

        run(cluster, app(cluster.env))
        assert max(peak) == 1

    def test_double_acquire_rejected(self):
        cluster, manager = build(DQNLManager)
        client = manager.client(cluster.nodes[1])

        def app(env):
            yield client.acquire(0)
            try:
                yield client.acquire(0)
            except LockError:
                return "rejected"

        assert run(cluster, app(cluster.env)) == "rejected"

    def test_release_without_hold_rejected(self):
        cluster, manager = build(DQNLManager)
        client = manager.client(cluster.nodes[1])

        def app(env):
            try:
                yield client.release(0)
            except LockError:
                return "rejected"

        assert run(cluster, app(cluster.env)) == "rejected"


class TestNCoSEDSpecifics:
    def test_word_encodes_tail_and_count(self):
        cluster, manager = build(NCoSEDManager, n_nodes=5)
        c1 = manager.client(cluster.nodes[1])
        c2 = manager.client(cluster.nodes[2])
        c3 = manager.client(cluster.nodes[3])
        snapshots = {}

        def app(env):
            yield c1.acquire(0, LockMode.SHARED)
            yield c2.acquire(0, LockMode.SHARED)
            snapshots["two_shared"] = manager.raw_word(0)
            yield c1.release(0)
            yield c2.release(0)
            yield env.timeout(200.0)
            snapshots["free"] = manager.raw_word(0)
            yield c3.acquire(0, LockMode.EXCLUSIVE)
            snapshots["excl"] = manager.raw_word(0)
            yield c3.release(0)

        run(cluster, app(cluster.env))
        assert snapshots["two_shared"] == 2  # count=2, no tail
        assert snapshots["free"] == 0
        assert snapshots["excl"] >> 32 == c3.token

    def test_shared_grant_is_single_rtt(self):
        """An uncontended shared acquire = one fetch-and-add RTT."""
        cluster, manager = build(NCoSEDManager)
        client = manager.client(cluster.nodes[1])

        def app(env):
            t0 = env.now
            yield client.acquire(0, LockMode.SHARED)
            return env.now - t0

        latency = run(cluster, app(cluster.env))
        assert latency < 15.0  # one atomic round trip

    def test_exclusive_waits_for_all_shared_drains(self):
        cluster, manager = build(NCoSEDManager, n_nodes=6)
        readers = [manager.client(cluster.nodes[i]) for i in (1, 2, 3)]
        writer = manager.client(cluster.nodes[4])
        times = {}

        def app(env):
            for r in readers:
                yield r.acquire(0, LockMode.SHARED)

            def writing(env):
                yield writer.acquire(0, LockMode.EXCLUSIVE)
                times["w"] = env.now

            wp = env.process(writing(env))
            yield env.timeout(500.0)
            # release readers one by one; writer only enters after the last
            for i, r in enumerate(readers):
                yield env.timeout(100.0)
                yield r.release(0)
                times[f"r{i}"] = env.now
            yield wp

        run(cluster, app(cluster.env))
        assert times["w"] >= times["r2"]

    def test_shared_after_pending_exclusive_waits(self):
        """A shared request behind a pending exclusive must not bypass it
        (no reader starvation of writers)."""
        cluster, manager = build(NCoSEDManager, n_nodes=6)
        r1 = manager.client(cluster.nodes[1])
        w = manager.client(cluster.nodes[2])
        r2 = manager.client(cluster.nodes[3])
        order = []

        def app(env):
            yield r1.acquire(0, LockMode.SHARED)

            def writer(env):
                yield w.acquire(0, LockMode.EXCLUSIVE)
                order.append("w")
                yield env.timeout(100.0)
                yield w.release(0)

            def late_reader(env):
                yield env.timeout(50.0)  # after the writer enqueued
                yield r2.acquire(0, LockMode.SHARED)
                order.append("r2")
                yield r2.release(0)

            wp = env.process(writer(env))
            rp = env.process(late_reader(env))
            yield env.timeout(500.0)
            yield r1.release(0)
            yield env.all_of([wp, rp])

        run(cluster, app(cluster.env))
        assert order == ["w", "r2"]
