"""Smoke test: every script in examples/ runs to completion.

Each example doubles as living documentation of the public API; this
keeps them from rotting when a signature changes.  Scripts run in a
subprocess (their own interpreter, like a reader would run them) and
must exit 0 without writing to stderr.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))
TIMEOUT_S = 120


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, env=env, timeout=TIMEOUT_S,
    )
    assert proc.returncode == 0, (
        f"{script.name} exited {proc.returncode}\n"
        f"stdout:\n{proc.stdout[-2000:]}\nstderr:\n{proc.stderr[-2000:]}")
    assert proc.stderr == "", f"{script.name} wrote to stderr"


def test_examples_exist():
    assert len(EXAMPLES) >= 5  # the gallery should not silently shrink
