"""Unit + property tests for the LRU store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CacheError
from repro.cache.store import LRUStore


class TestBasics:
    def test_insert_get(self):
        s = LRUStore(1000)
        s.insert(1, 100, b"tok1")
        assert s.get(1) == (100, b"tok1")
        assert 1 in s
        assert len(s) == 1
        assert s.used == 100

    def test_get_missing_returns_none(self):
        s = LRUStore(100)
        assert s.get(9) is None

    def test_eviction_order_is_lru(self):
        s = LRUStore(300)
        for doc in (1, 2, 3):
            s.insert(doc, 100, b"t")
        s.get(1)  # promote 1; LRU is now 2
        evicted = s.insert(4, 100, b"t")
        assert [d for d, _ in evicted] == [2]
        assert 1 in s and 3 in s and 4 in s

    def test_peek_does_not_promote(self):
        s = LRUStore(200)
        s.insert(1, 100, b"t")
        s.insert(2, 100, b"t")
        s.peek(1)  # 1 stays LRU
        evicted = s.insert(3, 100, b"t")
        assert [d for d, _ in evicted] == [1]

    def test_multiple_evictions_for_large_insert(self):
        s = LRUStore(300)
        for doc in (1, 2, 3):
            s.insert(doc, 100, b"t")
        evicted = s.insert(4, 250, b"t")
        assert len(evicted) == 3
        assert s.docs() == (4,)

    def test_reinsert_updates_size(self):
        s = LRUStore(300)
        s.insert(1, 100, b"a")
        s.insert(1, 200, b"b")
        assert s.used == 200
        assert s.get(1) == (200, b"b")

    def test_remove(self):
        s = LRUStore(100)
        s.insert(1, 50, b"t")
        assert s.remove(1) is True
        assert s.remove(1) is False
        assert s.used == 0

    def test_doc_larger_than_capacity_rejected(self):
        s = LRUStore(100)
        with pytest.raises(CacheError):
            s.insert(1, 101, b"t")

    def test_bad_sizes_rejected(self):
        with pytest.raises(CacheError):
            LRUStore(0)
        s = LRUStore(10)
        with pytest.raises(CacheError):
            s.insert(1, 0, b"t")

    def test_stats_counters(self):
        s = LRUStore(100)
        s.insert(1, 60, b"t")
        s.insert(2, 60, b"t")
        assert s.insertions == 2
        assert s.evictions == 1


@st.composite
def store_trace(draw):
    ops = []
    for _ in range(draw(st.integers(1, 50))):
        doc = draw(st.integers(0, 15))
        if draw(st.booleans()):
            ops.append(("insert", doc, draw(st.integers(1, 400))))
        else:
            ops.append(("get", doc, 0))
    return ops


class TestProperties:
    @given(store_trace())
    @settings(max_examples=150, deadline=None)
    def test_invariants_under_random_traces(self, ops):
        s = LRUStore(1000)
        for op, doc, size in ops:
            if op == "insert":
                s.insert(doc, size, b"tok")
            else:
                s.get(doc)
            s.check_invariants()

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 100)),
                    min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_used_never_exceeds_capacity(self, inserts):
        s = LRUStore(500)
        for doc, size in inserts:
            s.insert(doc, size, b"t")
            assert s.used <= 500

    @given(st.lists(st.integers(0, 5), min_size=7, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_recently_used_doc_survives(self, docs):
        """After inserting a working set larger than capacity, the most
        recently inserted doc is always present."""
        s = LRUStore(300)
        for doc in docs:
            s.insert(doc, 100, b"t")
            assert doc in s
