"""Tests for cache-node retirement (reconfiguration support)."""

import pytest

from repro.errors import CacheError
from repro.net import Cluster
from repro.cache import ApacheCache, CacheWithoutRedundancy
from repro.workloads import FileSet


def build(n_proxies=3, n_docs=30, doc_bytes=1000, capacity=40_000):
    cluster = Cluster(n_nodes=n_proxies, seed=3)
    proxies = cluster.nodes[:n_proxies]
    fileset = FileSet(n_docs, doc_bytes, seed=3)
    scheme = CacheWithoutRedundancy(proxies, fileset, capacity)
    return cluster, proxies, scheme, fileset


def run(cluster, gen):
    p = cluster.env.process(gen)
    cluster.env.run_until_event(p)
    return p.value


def warm(scheme, proxy, docs):
    for doc in docs:
        result = yield scheme.fetch(proxy, doc)
        if result.source == "miss":
            yield scheme.admit(proxy, doc)


class TestRetireNode:
    def victim_docs(self, scheme, proxies):
        victim = proxies[-1]
        return victim, [d for d in range(scheme.fileset.n_docs)
                        if scheme.directory.home_of(d).id == victim.id]

    def test_migrated_docs_survive(self):
        cluster, proxies, scheme, fileset = build()
        victim, vdocs = self.victim_docs(scheme, proxies)

        def app(env):
            yield from warm(scheme, proxies[0], range(30))
            yield from scheme.retire_node(victim, proxies[0],
                                          migrate=True)
            # every victim-homed doc is still served without a miss
            sources = []
            for doc in vdocs:
                result = yield scheme.fetch(proxies[1], doc)
                sources.append(result.source)
            return sources

        sources = run(cluster, app(cluster.env))
        assert all(s in ("local", "remote") for s in sources)

    def test_blind_retirement_loses_docs(self):
        cluster, proxies, scheme, fileset = build()
        victim, vdocs = self.victim_docs(scheme, proxies)

        def app(env):
            yield from warm(scheme, proxies[0], range(30))
            yield from scheme.retire_node(victim, proxies[0],
                                          migrate=False)
            sources = []
            for doc in vdocs:
                result = yield scheme.fetch(proxies[1], doc)
                sources.append(result.source)
            return sources

        sources = run(cluster, app(cluster.env))
        assert all(s == "miss" for s in sources)

    def test_retired_store_is_empty_and_unused(self):
        cluster, proxies, scheme, fileset = build()
        victim, vdocs = self.victim_docs(scheme, proxies)

        def app(env):
            yield from warm(scheme, proxies[0], range(30))
            yield from scheme.retire_node(victim, proxies[0],
                                          migrate=True)
            # new admissions for victim-homed docs land on the delegate
            doc = vdocs[0]
            scheme.stores[proxies[0].id].remove(doc)
            yield from scheme.directory.update(proxies[0], doc, None, 0)
            yield scheme.fetch(proxies[1], doc)   # miss
            yield scheme.admit(proxies[1], doc)
            return (len(scheme.stores[victim.id]),
                    doc in scheme.stores[proxies[0].id])

        victim_len, on_delegate = run(cluster, app(cluster.env))
        assert victim_len == 0
        assert on_delegate is True

    def test_host_of_follows_delegation(self):
        cluster, proxies, scheme, fileset = build()
        victim, vdocs = self.victim_docs(scheme, proxies)

        def app(env):
            yield from scheme.retire_node(victim, proxies[1],
                                          migrate=False)

        run(cluster, app(cluster.env))
        for doc in vdocs:
            assert scheme.directory.home_of(doc) is victim
            assert scheme.directory.host_of(doc) is proxies[1]

    def test_self_delegation_rejected(self):
        cluster, proxies, scheme, fileset = build()
        with pytest.raises(CacheError):
            scheme.directory.retire_shard(proxies[0].id, proxies[0])

    def test_retire_without_directory_rejected(self):
        cluster = Cluster(n_nodes=2, seed=0)
        fs = FileSet(5, 100)
        ac = ApacheCache(cluster.nodes[:2], fs, 1000)

        def app(env):
            yield from ac.retire_node(cluster.nodes[0],
                                      cluster.nodes[1])

        with pytest.raises(CacheError):
            run(cluster, app(cluster.env))

    def test_unknown_victim_rejected(self):
        cluster, proxies, scheme, fileset = build(n_proxies=2)
        other = Cluster(n_nodes=1, seed=9).nodes[0]

        def app(env):
            yield from scheme.retire_node(other, proxies[0])

        with pytest.raises(CacheError):
            run(cluster, app(cluster.env))
