"""Tests for the cache directory and the five cooperative schemes."""

import pytest

from repro.errors import CacheError
from repro.net import Cluster
from repro.cache import (
    ApacheCache,
    BasicCooperativeCache,
    CacheDirectory,
    CacheWithoutRedundancy,
    HybridCache,
    MultiTierAggregateCache,
    SCHEMES,
)
from repro.workloads import FileSet


def build(scheme_cls, n_proxies=3, n_extra=0, n_docs=40, doc_bytes=1000,
          capacity=4000, **kw):
    cluster = Cluster(n_nodes=n_proxies + n_extra + 1, seed=2)
    proxies = cluster.nodes[:n_proxies]
    extra = cluster.nodes[n_proxies:n_proxies + n_extra]
    fileset = FileSet(n_docs, doc_bytes, seed=2)
    scheme = scheme_cls(proxies, fileset, capacity, extra_nodes=extra, **kw)
    return cluster, proxies, scheme, fileset


def run(cluster, gen):
    p = cluster.env.process(gen)
    cluster.env.run_until_event(p)
    return p.value


def fetch_or_admit(scheme, proxy, doc):
    """The standard server-side driving pattern."""
    result = yield scheme.fetch(proxy, doc)
    if result.source == "miss":
        yield scheme.admit(proxy, doc)
        result = yield scheme.fetch(proxy, doc)
    return result


class TestDirectory:
    def test_lookup_empty(self):
        cluster, proxies, scheme, _ = build(BasicCooperativeCache)
        d = scheme.directory

        def app(env):
            holder, size = yield from d.lookup(proxies[0], 7)
            return holder, size

        assert run(cluster, app(cluster.env)) == (None, 0)

    def test_update_then_lookup_across_nodes(self):
        cluster, proxies, scheme, _ = build(BasicCooperativeCache)
        d = scheme.directory

        def app(env):
            yield from d.update(proxies[0], 7, proxies[2].id, 512)
            holder, size = yield from d.lookup(proxies[1], 7)
            return holder, size

        assert run(cluster, app(cluster.env)) == (proxies[2].id, 512)

    def test_clear_if_holder_respects_newer_update(self):
        cluster, proxies, scheme, _ = build(BasicCooperativeCache)
        d = scheme.directory

        def app(env):
            yield from d.update(proxies[0], 3, proxies[0].id, 100)
            yield from d.update(proxies[0], 3, proxies[1].id, 100)
            cleared = yield from d.clear_if_holder(proxies[0], 3,
                                                   proxies[0].id)
            holder, _ = yield from d.lookup(proxies[0], 3)
            return cleared, holder

        cleared, holder = run(cluster, app(cluster.env))
        assert cleared is False
        assert holder == proxies[1].id

    def test_remote_lookup_counted(self):
        cluster, proxies, scheme, _ = build(BasicCooperativeCache)
        d = scheme.directory
        doc = next(i for i in range(40)
                   if d.home_of(i).id != proxies[0].id)

        def app(env):
            yield from d.lookup(proxies[0], doc)

        run(cluster, app(cluster.env))
        assert d.remote_lookups == 1

    def test_out_of_range_doc(self):
        cluster, proxies, scheme, _ = build(BasicCooperativeCache)
        with pytest.raises(CacheError):
            scheme.directory.home_of(999)


@pytest.mark.parametrize("scheme_cls", list(SCHEMES.values()))
class TestAllSchemes:
    def test_served_token_is_correct(self, scheme_cls):
        cluster, proxies, scheme, fileset = build(scheme_cls)

        def app(env):
            tokens = []
            for doc in (0, 1, 2, 0, 1):
                result = yield from fetch_or_admit(scheme, proxies[0], doc)
                tokens.append((doc, result.token))
            return tokens

        for doc, token in run(cluster, app(cluster.env)):
            assert fileset.verify(doc, token), f"wrong content for {doc}"

    def test_repeat_access_becomes_hit(self, scheme_cls):
        cluster, proxies, scheme, _ = build(scheme_cls)

        def app(env):
            yield from fetch_or_admit(scheme, proxies[0], 5)
            result = yield scheme.fetch(proxies[0], 5)
            return result.source

        assert run(cluster, app(cluster.env)) in ("local", "remote")

    def test_miss_on_cold_cache(self, scheme_cls):
        cluster, proxies, scheme, _ = build(scheme_cls)

        def app(env):
            result = yield scheme.fetch(proxies[0], 9)
            return result.source

        assert run(cluster, app(cluster.env)) == "miss"

    def test_out_of_range_doc_rejected(self, scheme_cls):
        cluster, proxies, scheme, _ = build(scheme_cls)

        def app(env):
            try:
                yield scheme.fetch(proxies[0], 999)
            except CacheError:
                return "rejected"

        assert run(cluster, app(cluster.env)) == "rejected"


class TestApacheCache:
    def test_no_cooperation(self):
        """A doc cached on proxy 0 is a miss on proxy 1."""
        cluster, proxies, scheme, _ = build(ApacheCache)

        def app(env):
            yield from fetch_or_admit(scheme, proxies[0], 3)
            result = yield scheme.fetch(proxies[1], 3)
            return result.source

        assert run(cluster, app(cluster.env)) == "miss"


class TestBCC:
    def test_peer_fetch_and_duplication(self):
        cluster, proxies, scheme, _ = build(BasicCooperativeCache)

        def app(env):
            yield from fetch_or_admit(scheme, proxies[0], 3)
            result = yield scheme.fetch(proxies[1], 3)
            # after the remote hit, proxy 1 holds its own copy
            local_after = 3 in scheme.stores[proxies[1].id]
            return result.source, local_after

        source, local_after = run(cluster, app(cluster.env))
        assert source == "remote"
        assert local_after is True
        assert scheme.remote_hits == 1

    def test_stale_directory_probe_falls_back_to_miss(self):
        cluster, proxies, scheme, _ = build(BasicCooperativeCache)

        def app(env):
            yield from fetch_or_admit(scheme, proxies[0], 3)
            # evict behind the directory's back
            scheme.stores[proxies[0].id].remove(3)
            result = yield scheme.fetch(proxies[1], 3)
            return result.source

        assert run(cluster, app(cluster.env)) == "miss"
        assert scheme.stale_probes == 1

    def test_eviction_clears_directory(self):
        cluster, proxies, scheme, _ = build(
            BasicCooperativeCache, n_docs=10, doc_bytes=1000, capacity=2000)

        def app(env):
            # fill proxy 0 beyond capacity: doc 0 gets evicted
            for doc in (0, 1, 2):
                yield from fetch_or_admit(scheme, proxies[0], doc)
            holder = scheme.directory.raw_holder(0)
            return holder

        assert run(cluster, app(cluster.env)) is None


class TestCCWR:
    def test_single_copy_cluster_wide(self):
        cluster, proxies, scheme, _ = build(CacheWithoutRedundancy)

        def app(env):
            for proxy in proxies:
                yield from fetch_or_admit(scheme, proxy, 4)
            copies = sum(4 in s for s in scheme.stores.values())
            return copies

        assert run(cluster, app(cluster.env)) == 1

    def test_copy_lives_at_home(self):
        cluster, proxies, scheme, _ = build(CacheWithoutRedundancy)

        def app(env):
            yield from fetch_or_admit(scheme, proxies[0], 4)
            home = scheme.directory.home_of(4)
            return 4 in scheme.stores[home.id]

        assert run(cluster, app(cluster.env)) is True

    def test_aggregate_capacity_exceeds_single_node(self):
        """With 3 proxies, CCWR holds ~3x what one AC node can."""
        n_docs, doc_bytes, capacity = 12, 1000, 4000
        cluster, proxies, ccwr, _ = build(
            CacheWithoutRedundancy, n_docs=n_docs, doc_bytes=doc_bytes,
            capacity=capacity)

        def app(env):
            for doc in range(n_docs):
                yield from fetch_or_admit(ccwr, proxies[0], doc)
            return ccwr.unique_docs_cached

        assert run(cluster, app(cluster.env)) == n_docs  # 12k < 3x4k


class TestMTACC:
    def test_extra_nodes_contribute_capacity(self):
        _, _, ccwr, _ = build(CacheWithoutRedundancy, n_proxies=2)
        _, _, mtacc, _ = build(MultiTierAggregateCache, n_proxies=2,
                               n_extra=2)
        assert len(mtacc.stores) == len(ccwr.stores) + 2

    def test_documents_land_on_app_tier(self):
        cluster, proxies, scheme, _ = build(MultiTierAggregateCache,
                                            n_proxies=2, n_extra=2,
                                            n_docs=40)

        def app(env):
            for doc in range(8):
                yield from fetch_or_admit(scheme, proxies[0], doc)
            extra_ids = {n.id for n in scheme.extra}
            on_extra = sum(len(scheme.stores[i]) for i in extra_ids)
            return on_extra

        assert run(cluster, app(cluster.env)) > 0


class TestHYBCC:
    def test_small_docs_duplicate_large_do_not(self):
        fileset_kw = dict(n_proxies=3, n_docs=20)
        cluster = Cluster(n_nodes=4, seed=2)
        proxies = cluster.nodes[:3]
        fs = FileSet(20, [1000] * 10 + [30_000] * 10, seed=2)
        scheme = HybridCache(proxies, fs, 64_000, threshold=16_384)

        def app(env):
            # access a small doc from two proxies
            yield from fetch_or_admit(scheme, proxies[0], 0)
            yield from fetch_or_admit(scheme, proxies[1], 0)
            small_copies = sum(0 in s for s in scheme.stores.values())
            # access a large doc from two proxies
            yield from fetch_or_admit(scheme, proxies[0], 15)
            yield from fetch_or_admit(scheme, proxies[1], 15)
            large_copies = sum(15 in s for s in scheme.stores.values())
            return small_copies, large_copies

        small, large = run(cluster, app(cluster.env))
        assert small == 2   # duplicated
        assert large == 1   # single copy


class TestSchemeHitAccounting:
    def test_hit_ratio(self):
        cluster, proxies, scheme, _ = build(ApacheCache)

        def app(env):
            yield from fetch_or_admit(scheme, proxies[0], 1)
            yield scheme.fetch(proxies[0], 1)
            yield scheme.fetch(proxies[0], 2)  # miss, not admitted

        run(cluster, app(cluster.env))
        # 2 hits (after-admit fetch + repeat), 2 misses (cold + doc 2)
        assert scheme.local_hits == 2
        assert scheme.misses == 2
        assert scheme.hit_ratio() == pytest.approx(0.5)
