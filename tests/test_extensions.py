"""Tests for the Figure-1 features the paper defers to future work:
hardware multicast, the global memory aggregator, and admission control.
"""

import pytest

from repro.errors import ConfigError, DDSSError
from repro.net import Cluster
from repro.ddss import DDSS, GlobalMemoryAggregator
from repro.datacenter import AdmissionController
from repro.monitor import KernelStats, RdmaSyncMonitor, RdmaAsyncMonitor


class TestMulticast:
    def test_delivers_to_all_members(self):
        cluster = Cluster(n_nodes=5, seed=0)
        src = cluster.nodes[0]
        dsts = [n.id for n in cluster.nodes[1:]]
        got = []

        def receiver(env, node):
            msg = yield node.nic.recv(tag="grp")
            got.append((node.id, msg.payload, env.now))

        for node in cluster.nodes[1:]:
            cluster.env.process(receiver(cluster.env, node))

        def sender(env):
            yield src.nic.send_multicast(dsts, payload="announce",
                                         size=256, tag="grp")

        cluster.env.process(sender(cluster.env))
        cluster.env.run()
        assert sorted(nid for nid, _p, _t in got) == dsts
        assert all(p == "announce" for _n, p, _t in got)
        # switch replication: everyone hears it at the same instant
        times = {t for _n, _p, t in got}
        assert len(times) == 1

    def test_single_egress_injection(self):
        """Group size does not multiply the sender's serialization."""

        def send_time(n_dsts):
            cluster = Cluster(n_nodes=9, seed=0)
            src = cluster.nodes[0]
            dsts = [n.id for n in cluster.nodes[1:1 + n_dsts]]

            def sender(env):
                t0 = env.now
                yield src.nic.send_multicast(dsts, size=90_000)
                return env.now - t0

            p = cluster.env.process(sender(cluster.env))
            cluster.env.run_until_event(p)
            return p.value

        assert send_time(8) == pytest.approx(send_time(1))

    def test_bad_group_rejected(self):
        cluster = Cluster(n_nodes=2, seed=0)
        with pytest.raises(ConfigError):
            cluster.fabric.multicast(0, [], 8)
        with pytest.raises(ConfigError):
            cluster.fabric.multicast(0, [99], 8)


class TestGlobalMemoryAggregator:
    def build(self, n_nodes=4, segment=64 * 1024):
        cluster = Cluster(n_nodes=n_nodes, seed=1)
        ddss = DDSS(cluster, segment_bytes=segment)
        gma = GlobalMemoryAggregator(ddss, publish_period_us=1_000.0)
        return cluster, ddss, gma

    def test_initial_view_shows_full_segments(self):
        cluster, ddss, gma = self.build()

        def app(env):
            view = yield gma.read_view(cluster.nodes[1])
            return view

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p)
        assert all(v == 64 * 1024 for v in p.value.values())

    def test_publish_reflects_allocations(self):
        cluster, ddss, gma = self.build()
        client = ddss.client(cluster.nodes[1])

        def app(env):
            for _ in range(4):
                yield client.allocate(8_000, placement=2)
            yield env.timeout(5_000.0)  # let node 2 republish
            view = yield gma.read_view(cluster.nodes[1])
            return view

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p)
        view = p.value
        assert view[2] < view[0]
        assert view[2] == ddss.allocator(2).free_bytes

    def test_best_fit_pick_avoids_full_member(self):
        cluster, ddss, gma = self.build()
        client = ddss.client(cluster.nodes[1])

        def app(env):
            # nearly fill member 0
            for _ in range(7):
                yield client.allocate(8_000, placement=0)
            yield env.timeout(5_000.0)
            home = yield gma.pick_home(cluster.nodes[1])
            return home

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p)
        assert p.value != 0

    def test_best_fit_placement_reduces_imbalance(self):
        """Allocating via the aggregator spreads load more evenly than
        hammering one round-robin-unlucky member."""
        cluster, ddss, gma = self.build(segment=256 * 1024)
        client = ddss.client(cluster.nodes[1])

        def app(env):
            for _ in range(24):
                home = yield gma.pick_home(cluster.nodes[1])
                yield client.allocate(6_000, placement=home)
                yield env.timeout(2_500.0)
            return gma.imbalance()

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p)
        assert p.value < 0.10  # within 10% of a segment

    def test_bad_period_rejected(self):
        cluster = Cluster(n_nodes=2, seed=0)
        ddss = DDSS(cluster)
        with pytest.raises(DDSSError):
            GlobalMemoryAggregator(ddss, publish_period_us=0)


class TestAdmissionControl:
    def build(self, n_back=2):
        cluster = Cluster(n_nodes=n_back + 1, seed=2)
        front = cluster.nodes[0]
        backs = cluster.nodes[1:]
        stats = {b.id: KernelStats(b) for b in backs}
        monitor = RdmaAsyncMonitor(front, stats, period_us=500.0)
        return cluster, front, backs, monitor

    def test_accepts_when_idle(self):
        cluster, front, backs, monitor = self.build()
        ctl = AdmissionController(monitor, high_water=10, low_water=5)
        cluster.env.run(until=2_000.0)
        assert ctl.admit() is True
        assert ctl.accepted == 1

    def test_sheds_under_overload_with_hysteresis(self):
        cluster, front, backs, monitor = self.build()
        ctl = AdmissionController(monitor, high_water=10, low_water=5)
        for b in backs:
            b.cpu.set_background(15)
        cluster.env.run(until=2_000.0)
        assert ctl.admit() is False
        # load falls, but only below low_water does admission resume
        for b in backs:
            b.cpu.set_background(7)
        cluster.env.run(until=4_000.0)
        assert ctl.admit() is False  # 7 > low_water: still shedding
        for b in backs:
            b.cpu.set_background(2)
        cluster.env.run(until=6_000.0)
        assert ctl.admit() is True
        assert ctl.rejected == 2

    def test_reject_ratio(self):
        cluster, front, backs, monitor = self.build()
        ctl = AdmissionController(monitor, high_water=10, low_water=5)
        cluster.env.run(until=2_000.0)
        ctl.admit()
        assert ctl.reject_ratio == 0.0

    def test_bad_watermarks(self):
        cluster, front, backs, monitor = self.build()
        with pytest.raises(ConfigError):
            AdmissionController(monitor, high_water=5, low_water=5)
