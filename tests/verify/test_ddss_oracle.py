"""Seeded mutations against the DDSS coherence oracles: stale reads,
lost updates, torn snapshots and bound violations injected into
synthetic traces must all be flagged; the clean variants must pass."""

from repro.obs.events import TraceEvent
from repro.verify import DDSSOracle, TraceView, replay_fresh

A4 = "aa" * 4
B4 = "bb" * 4
C4 = "cc" * 4


def _alloc(t, key, model, delta=2, ttl_us=1000.0, replicas=0):
    return TraceEvent(t, 0, "ddss.alloc",
                      {"key": key, "model": model, "nbytes": 4,
                       "delta": delta, "ttl_us": ttl_us,
                       "replicas": replicas})


def _put(t0, t, node, key, model, version, data):
    return TraceEvent(t, node, "ddss.put.done",
                      {"key": key, "model": model, "t0": t0,
                       "version": version, "nbytes": 4, "data": data})


def _get(t0, t, node, key, model, version, data, hit=False, age_us=None):
    return TraceEvent(t, node, "ddss.get.done",
                      {"key": key, "model": model, "t0": t0,
                       "version": version, "nbytes": 4, "data": data,
                       "hit": hit, "age_us": age_us})


def _replay(events):
    oracles, violations = replay_fresh(TraceView(events), [DDSSOracle])
    return oracles[0], violations


def _msgs(violations):
    return " | ".join(v["msg"] for v in violations)


class TestCleanTraces:
    def test_serialized_puts_and_fresh_get_pass(self):
        events = [
            _alloc(0.0, 5, "WRITE"),
            _put(1.0, 2.0, 1, 5, "WRITE", 1, A4),
            _put(3.0, 4.0, 2, 5, "WRITE", 2, B4),
            _get(5.0, 6.0, 3, 5, "WRITE", None, B4),
        ]
        oracle, violations = _replay(events)
        assert violations == []
        assert oracle.checked == len(events)

    def test_initial_zero_state_readable(self):
        events = [
            _alloc(0.0, 5, "STRICT"),
            _get(1.0, 2.0, 1, 5, "STRICT", None, "00" * 4),
        ]
        _oracle, violations = _replay(events)
        assert violations == []

    def test_overlapping_put_excuses_old_value(self):
        # put of B overlaps the get, so returning the older A is legal
        events = [
            _alloc(0.0, 5, "WRITE"),
            _put(1.0, 2.0, 1, 5, "WRITE", 1, A4),
            _put(3.0, 9.0, 2, 5, "WRITE", 2, B4),
            _get(5.0, 6.0, 3, 5, "WRITE", None, A4),
        ]
        _oracle, violations = _replay(events)
        assert violations == []


class TestMutations:
    def test_stale_read_flagged(self):
        # B was wholly committed before the get began, yet A is served
        events = [
            _alloc(0.0, 5, "WRITE"),
            _put(1.0, 2.0, 1, 5, "WRITE", 1, A4),
            _put(3.0, 4.0, 2, 5, "WRITE", 2, B4),
            _get(5.0, 6.0, 3, 5, "WRITE", None, A4),
        ]
        _oracle, violations = _replay(events)
        assert "stale read" in _msgs(violations)
        assert "superseded" in _msgs(violations)

    def test_torn_read_flagged(self):
        events = [
            _alloc(0.0, 5, "WRITE"),
            _put(1.0, 2.0, 1, 5, "WRITE", 1, A4),
            _get(3.0, 4.0, 2, 5, "WRITE", None, "deadbeef"),
        ]
        _oracle, violations = _replay(events)
        assert "torn read" in _msgs(violations)

    def test_read_snapshot_mismatch_flagged(self):
        # READ pairs (version, data) atomically: version 2 with
        # version-1 bytes is a torn snapshot
        events = [
            _alloc(0.0, 5, "READ"),
            _put(1.0, 2.0, 1, 5, "READ", 1, A4),
            _put(3.0, 4.0, 1, 5, "READ", 2, B4),
            _get(5.0, 6.0, 2, 5, "READ", 2, A4),
        ]
        _oracle, violations = _replay(events)
        assert "snapshot matches no atomic put" in _msgs(violations)

    def test_lost_update_flagged(self):
        # two puts both committed version 1: the locked bump was lost
        events = [
            _alloc(0.0, 5, "STRICT"),
            _put(1.0, 2.0, 1, 5, "STRICT", 1, A4),
            _put(3.0, 4.0, 2, 5, "STRICT", 1, B4),
        ]
        _oracle, violations = _replay(events)
        assert "lost update" in _msgs(violations)
        assert "expected {1..2}" in _msgs(violations)

    def test_stale_delta_hit_flagged(self):
        events = [
            _alloc(0.0, 5, "DELTA", delta=1),
            _put(1.0, 2.0, 1, 5, "DELTA", 1, A4),
            _put(3.0, 4.0, 1, 5, "DELTA", 2, B4),
            _put(5.0, 6.0, 1, 5, "DELTA", 3, C4),
            # mutation: cached copy lags 2 behind with delta=1
            _get(7.0, 8.0, 2, 5, "DELTA", 1, A4, hit=True),
        ]
        _oracle, violations = _replay(events)
        assert "DELTA bound exceeded" in _msgs(violations)

    def test_delta_hit_within_bound_passes(self):
        events = [
            _alloc(0.0, 5, "DELTA", delta=2),
            _put(1.0, 2.0, 1, 5, "DELTA", 1, A4),
            _put(3.0, 4.0, 1, 5, "DELTA", 2, B4),
            _put(5.0, 6.0, 1, 5, "DELTA", 3, C4),
            _get(7.0, 8.0, 2, 5, "DELTA", 1, A4, hit=True),
        ]
        _oracle, violations = _replay(events)
        assert violations == []

    def test_expired_temporal_hit_flagged(self):
        events = [
            _alloc(0.0, 5, "TEMPORAL", ttl_us=100.0),
            _put(1.0, 2.0, 1, 5, "TEMPORAL", 1, A4),
            _get(500.0, 501.0, 2, 5, "TEMPORAL", 1, A4,
                 hit=True, age_us=400.0),
        ]
        _oracle, violations = _replay(events)
        assert "TEMPORAL bound exceeded" in _msgs(violations)

    def test_version_going_backwards_flagged(self):
        events = [
            _alloc(0.0, 5, "VERSION"),
            _put(1.0, 2.0, 1, 5, "VERSION", 1, A4),
            _put(3.0, 4.0, 1, 5, "VERSION", 2, B4),
            _get(5.0, 6.0, 2, 5, "VERSION", 2, B4),
            # mutation: a later, non-overlapping read sees version 1
            _get(7.0, 8.0, 3, 5, "VERSION", 1, A4),
        ]
        _oracle, violations = _replay(events)
        assert "version went backwards" in _msgs(violations)

    def test_replicated_keys_skipped(self):
        # failover tolerates divergent copies: same trace as the lost
        # update case, but replicated — must pass
        events = [
            _alloc(0.0, 5, "STRICT", replicas=1),
            _put(1.0, 2.0, 1, 5, "STRICT", 1, A4),
            _put(3.0, 4.0, 2, 5, "STRICT", 1, B4),
        ]
        _oracle, violations = _replay(events)
        assert violations == []
