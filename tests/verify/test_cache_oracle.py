"""Seeded mutations against the cache oracle: hits serving evicted or
stale content, phantom remote holders and broken store accounting must
all be flagged; the clean variants must pass."""

from repro.obs.events import TraceEvent
from repro.verify import CacheOracle, TraceView, replay_fresh


def _admit(t, node, doc, size=100, used=None, capacity=1000, tok="aa"):
    return TraceEvent(t, node, "cache.admit",
                      {"doc": doc, "size": size,
                       "used": size if used is None else used,
                       "capacity": capacity, "tok": tok})


def _evict(t, node, doc, size=100):
    return TraceEvent(t, node, "cache.evict", {"doc": doc, "size": size})


def _hit_local(t, node, doc, tok="aa", t0=None):
    return TraceEvent(t, node, "cache.hit.local",
                      {"doc": doc, "tok": tok,
                       "t0": t if t0 is None else t0})


def _hit_remote(t, node, doc, holder, tok="aa", t0=None):
    return TraceEvent(t, node, "cache.hit.remote",
                      {"doc": doc, "tok": tok,
                       "t0": t if t0 is None else t0, "holder": holder})


def _replay(events):
    oracles, violations = replay_fresh(TraceView(events), [CacheOracle])
    return oracles[0], violations


def _msgs(violations):
    return " | ".join(v["msg"] for v in violations)


class TestCleanTraces:
    def test_admit_hit_evict_passes(self):
        events = [
            _admit(1.0, 1, 7),
            _hit_local(2.0, 1, 7),
            _hit_remote(3.0, 2, 7, holder=1),
            _evict(4.0, 1, 7),
            TraceEvent(5.0, 2, "cache.miss", {"doc": 7}),
        ]
        oracle, violations = _replay(events)
        assert violations == []
        assert oracle.checked == len(events)

    def test_concurrent_evict_covered_by_t0(self):
        # lookup started at t0=2.0 while resident; the evict landing
        # before the hit's emission must not be flagged
        events = [
            _admit(1.0, 1, 7),
            _evict(2.5, 1, 7),
            _hit_local(3.0, 1, 7, t0=2.0),
        ]
        _oracle, violations = _replay(events)
        assert violations == []

    def test_readmission_intervals_tracked(self):
        events = [
            _admit(1.0, 1, 7, tok="aa"),
            _evict(2.0, 1, 7),
            _admit(3.0, 1, 7, tok="bb"),
            _hit_local(4.0, 1, 7, tok="bb"),
        ]
        _oracle, violations = _replay(events)
        assert violations == []


class TestMutations:
    def test_hit_on_evicted_doc_flagged(self):
        events = [
            _admit(1.0, 1, 7),
            _evict(2.0, 1, 7),
            # mutation: served long after eviction
            _hit_local(5.0, 1, 7, t0=4.0),
        ]
        _oracle, violations = _replay(events)
        assert "did not hold it at t0=4.000" in _msgs(violations)

    def test_hit_serving_stale_content_flagged(self):
        events = [
            _admit(1.0, 1, 7, tok="aa"),
            # mutation: the bytes served don't match the resident copy
            _hit_local(2.0, 1, 7, tok="bb"),
        ]
        _oracle, violations = _replay(events)
        assert "served stale content" in _msgs(violations)
        assert "token bb" in _msgs(violations)

    def test_remote_hit_phantom_holder_flagged(self):
        events = [
            _admit(1.0, 1, 7),
            # mutation: directory claims node 3 holds doc 7
            _hit_remote(2.0, 2, 7, holder=3),
        ]
        _oracle, violations = _replay(events)
        assert "remote hit" in _msgs(violations)
        assert "from node 3" in _msgs(violations)

    def test_evict_of_non_resident_flagged(self):
        events = [_evict(1.0, 1, 7)]
        _oracle, violations = _replay(events)
        assert "not resident" in _msgs(violations)

    def test_accounting_mismatch_flagged(self):
        events = [
            _admit(1.0, 1, 7, size=100, used=100),
            # mutation: store forgot the first document's bytes
            _admit(2.0, 1, 8, size=50, used=50),
        ]
        _oracle, violations = _replay(events)
        assert "accounting mismatch" in _msgs(violations)

    def test_over_capacity_flagged(self):
        events = [
            _admit(1.0, 1, 7, size=800, used=800, capacity=1000),
            _admit(2.0, 1, 8, size=400, used=1200, capacity=1000),
        ]
        _oracle, violations = _replay(events)
        assert "over capacity" in _msgs(violations)

    def test_evict_size_mismatch_flagged(self):
        events = [
            _admit(1.0, 1, 7, size=100),
            _evict(2.0, 1, 7, size=60),
        ]
        _oracle, violations = _replay(events)
        assert "evict size 60 != admitted size 100" in _msgs(violations)
