"""HAOracle on synthetic traces: declared failover must happen in its
window (liveness), forbidden failover must not (split-brain safety),
lock requests must settle, and malformed declarations are flagged."""

from repro.obs.events import TraceEvent
from repro.verify import HAOracle, TraceView, replay_fresh


def _ev(t, etype, node=-1, **fields):
    return TraceEvent(t, node, etype, fields)


def _expect(t, kind, **fields):
    return _ev(t, "ha.expect", kind=kind, **fields)


def _tick(t):
    """Advance the oracle's trace clock (only PREFIXES events count)."""
    return _ev(t, "lock.release", node=0, mgr="clock", lock=99, token=0)


def _replay(events):
    oracles, violations = replay_fresh(TraceView(events), [HAOracle])
    return oracles[0], violations


def _msgs(violations):
    return " | ".join(v["msg"] for v in violations)


class TestFailoverLiveness:
    DECL = dict(victims=[3], after=100.0, by=500.0)

    def test_rehome_inside_window_satisfies(self):
        _o, violations = _replay([
            _expect(0.0, "failover", **self.DECL),
            _ev(300.0, "lock.rehome", node=0, lock=1, frm=3, to=1, ep=2),
            _ev(900.0, "lock.grant", node=1, mgr="m", lock=1, token=5),
        ])
        assert violations == []

    def test_evict_and_backfill_count_as_recovery(self):
        for etype in ("reconfig.evict", "reconfig.backfill"):
            _o, violations = _replay([
                _expect(0.0, "failover", **self.DECL),
                _ev(400.0, etype, node=0, mnode=3),
                _tick(900.0),
            ])
            assert violations == [], etype

    def test_missing_recovery_is_liveness_violation(self):
        _o, violations = _replay([
            _expect(0.0, "failover", **self.DECL),
            _tick(900.0),  # trace extends past the deadline
        ])
        assert len(violations) == 1
        assert "missing failover" in _msgs(violations)
        assert "liveness" in _msgs(violations)

    def test_late_recovery_still_violates(self):
        _o, violations = _replay([
            _expect(0.0, "failover", **self.DECL),
            _ev(700.0, "lock.rehome", node=0, lock=1, frm=3, to=1, ep=2),
        ])
        assert "missing failover" in _msgs(violations)

    def test_recovery_of_wrong_victim_does_not_count(self):
        _o, violations = _replay([
            _expect(0.0, "failover", **self.DECL),
            _ev(300.0, "lock.rehome", node=0, lock=1, frm=2, to=1, ep=2),
            _tick(900.0),
        ])
        assert "missing failover" in _msgs(violations)

    def test_deadline_beyond_trace_is_not_judged(self):
        # trace ends at t=200 < by=500: absence proves nothing
        _o, violations = _replay([
            _expect(0.0, "failover", **self.DECL),
            _tick(200.0),  # in-prefix, so the oracle sees the trace end
        ])
        assert violations == []


class TestNoFailoverSafety:
    DECL = dict(victims=[2, 3], start=100.0, until=900.0)

    def test_quiet_window_passes(self):
        _o, violations = _replay([
            _expect(0.0, "no-failover", **self.DECL),
            _ev(950.0, "lock.rehome", node=0, lock=0, frm=3, to=1, ep=2),
        ])
        assert violations == []  # recovery after the window is fine

    def test_eviction_inside_window_is_split_brain(self):
        _o, violations = _replay([
            _expect(0.0, "no-failover", **self.DECL),
            _ev(400.0, "lock.rehome", node=0, lock=0, frm=3, to=1, ep=2),
        ])
        assert len(violations) == 1
        assert "forbidden failover" in _msgs(violations)
        assert "split-brain" in _msgs(violations)

    def test_non_victim_recovery_is_allowed(self):
        _o, violations = _replay([
            _expect(0.0, "no-failover", **self.DECL),
            _ev(400.0, "reconfig.evict", node=0, mnode=4),
        ])
        assert violations == []


class TestLockSettle:
    def req(self, t, token):
        return _ev(t, "lock.request", node=1, mgr="m", lock=0,
                   token=token, mode="EXCLUSIVE")

    def test_granted_request_settles(self):
        _o, violations = _replay([
            _expect(0.0, "lock-settle", settle=500.0),
            self.req(100.0, 7),
            _ev(200.0, "lock.grant", node=1, mgr="m", lock=0, token=7),
            _tick(2_000.0),
        ])
        assert violations == []

    def test_explicit_fail_settles_too(self):
        _o, violations = _replay([
            _expect(0.0, "lock-settle", settle=500.0),
            self.req(100.0, 7),
            _ev(300.0, "lock.fail", node=1, mgr="m", lock=0, token=7),
            _tick(2_000.0),
        ])
        assert violations == []

    def test_silent_hang_is_flagged(self):
        _o, violations = _replay([
            _expect(0.0, "lock-settle", settle=500.0),
            self.req(100.0, 7),
            _tick(2_000.0),
        ])
        assert "never settled" in _msgs(violations)

    def test_request_near_trace_end_not_judged(self):
        _o, violations = _replay([
            _expect(0.0, "lock-settle", settle=500.0),
            self.req(100.0, 7),
            _tick(400.0),  # window extends past the trace
        ])
        assert violations == []


class TestDeclarations:
    def test_unknown_kind_is_flagged(self):
        _o, violations = _replay([_expect(0.0, "failsafe", victims=[1])])
        assert "unknown ha.expect kind" in _msgs(violations)

    def test_oracle_is_inert_without_expectations(self):
        oracle, violations = _replay([
            _ev(100.0, "lock.rehome", node=0, lock=0, frm=3, to=1, ep=2),
            _ev(200.0, "reconfig.evict", node=0, mnode=3),
        ])
        assert violations == []
