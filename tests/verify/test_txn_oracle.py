"""Seeded mutation-injection tests for the transaction oracle.

Each test hand-crafts a txn.* trace containing one specific violation
class (lost update, dependency cycle, dirty read/write, torn install,
torn read, skipped version) and asserts the oracle names it — and the
matching clean trace stays clean, so detections are not vacuous."""

import pytest

from repro.ddss.client import _fingerprint
from repro.verify import TxnOracle
from repro.verify.trace import TraceEvent, TraceView, replay_fresh

NB = 16
ZEROS = b"\x00" * NB
A = b"A" * NB
B = b"B" * NB
C = b"C" * NB

FP_ZERO = _fingerprint(ZEROS)
FP_A = _fingerprint(A)
FP_B = _fingerprint(B)
FP_C = _fingerprint(C)

_BUSY = 1 << 63


def ev(t, etype, **fields):
    return TraceEvent(float(t), 0, "txn." + etype, fields)


def check(events):
    """Replay a synthetic trace; return (oracle, violation msgs)."""
    oracles, violations = replay_fresh(TraceView(events), [TxnOracle])
    return oracles[0], [v["msg"] for v in violations]


def write_txn(t0, tid, key, version, payload_fp, read_version=None,
              read_fp=FP_ZERO, attempt=1):
    """Events for one txn that reads `key` then installs `version`."""
    rv = version - 1 if read_version is None else read_version
    return [
        ev(t0, "begin", tid=tid, label="w", keys=[key]),
        ev(t0 + 1, "read", tid=tid, attempt=attempt, key=key,
           version=rv, data=read_fp, nbytes=NB),
        ev(t0 + 2, "validate", tid=tid, attempt=attempt, ok=True),
        ev(t0 + 3, "install", tid=tid, attempt=attempt, key=key,
           version=version, data=payload_fp),
        ev(t0 + 4, "commit", tid=tid, attempt=attempt, keys=[key]),
    ]


class TestCleanTraces:
    def test_serial_chain_is_clean(self):
        events = (write_txn(0, 1, key=1, version=1, payload_fp=FP_A)
                  + write_txn(10, 2, key=1, version=2, payload_fp=FP_B,
                              read_fp=FP_A))
        oracle, msgs = check(events)
        assert msgs == []
        assert oracle.clean
        assert oracle.checked == len(events)

    def test_aborted_attempt_without_install_is_clean(self):
        events = write_txn(0, 1, key=1, version=1, payload_fp=FP_A) + [
            ev(20, "begin", tid=2, label="a", keys=[1]),
            ev(21, "read", tid=2, attempt=1, key=1, version=1,
               data=FP_A, nbytes=NB),
            ev(22, "validate", tid=2, attempt=1, ok=False),
            ev(23, "abort", tid=2, attempt=1, reason="conflict"),
        ]
        _oracle, msgs = check(events)
        assert msgs == []

    def test_wedged_installs_are_readable(self):
        """A mid-publish crash leaves durable installs other committed
        transactions may legally read."""
        events = [
            ev(0, "begin", tid=1, label="w", keys=[1, 2]),
            ev(1, "read", tid=1, attempt=1, key=1, version=0,
               data=FP_ZERO, nbytes=NB),
            ev(2, "read", tid=1, attempt=1, key=2, version=0,
               data=FP_ZERO, nbytes=NB),
            ev(3, "install", tid=1, attempt=1, key=1, version=1,
               data=FP_A),
            ev(4, "wedged", tid=1, attempt=1, installed=[1],
               keys=[1, 2]),
        ] + write_txn(10, 2, key=1, version=2, payload_fp=FP_B,
                      read_fp=FP_A)
        _oracle, msgs = check(events)
        assert msgs == []


class TestLostUpdate:
    def test_double_install_at_same_version_flagged(self):
        events = (write_txn(0, 1, key=1, version=1, payload_fp=FP_A)
                  + write_txn(10, 2, key=1, version=1, payload_fp=FP_B))
        _oracle, msgs = check(events)
        assert any("lost update" in m and "[1, 2]" in m for m in msgs)


class TestSerializabilityCycle:
    def test_write_skew_cycle_flagged(self):
        """Classic write skew: each txn reads the key the other writes,
        both validate against version 0, both commit."""
        events = [
            ev(0, "begin", tid=1, label="ws", keys=[1]),
            ev(1, "read", tid=1, attempt=1, key=1, version=0,
               data=FP_ZERO, nbytes=NB),
            ev(2, "read", tid=1, attempt=1, key=2, version=0,
               data=FP_ZERO, nbytes=NB),
            ev(3, "begin", tid=2, label="ws", keys=[2]),
            ev(4, "read", tid=2, attempt=1, key=1, version=0,
               data=FP_ZERO, nbytes=NB),
            ev(5, "read", tid=2, attempt=1, key=2, version=0,
               data=FP_ZERO, nbytes=NB),
            ev(6, "install", tid=1, attempt=1, key=1, version=1,
               data=FP_A),
            ev(7, "install", tid=2, attempt=1, key=2, version=1,
               data=FP_B),
            ev(8, "commit", tid=1, attempt=1, keys=[1]),
            ev(9, "commit", tid=2, attempt=1, keys=[2]),
        ]
        _oracle, msgs = check(events)
        assert any("serializability violation" in m
                   and "1 -> 2 -> 1" in m for m in msgs)

    def test_serial_write_skew_shape_is_clean(self):
        """Same reads/writes, but txn 2 reads txn 1's install — a serial
        order exists, so no cycle may be reported."""
        events = [
            ev(0, "begin", tid=1, label="ws", keys=[1]),
            ev(1, "read", tid=1, attempt=1, key=1, version=0,
               data=FP_ZERO, nbytes=NB),
            ev(2, "read", tid=1, attempt=1, key=2, version=0,
               data=FP_ZERO, nbytes=NB),
            ev(3, "install", tid=1, attempt=1, key=1, version=1,
               data=FP_A),
            ev(4, "commit", tid=1, attempt=1, keys=[1]),
            ev(5, "begin", tid=2, label="ws", keys=[2]),
            ev(6, "read", tid=2, attempt=1, key=1, version=1,
               data=FP_A, nbytes=NB),
            ev(7, "read", tid=2, attempt=1, key=2, version=0,
               data=FP_ZERO, nbytes=NB),
            ev(8, "install", tid=2, attempt=1, key=2, version=1,
               data=FP_B),
            ev(9, "commit", tid=2, attempt=1, keys=[2]),
        ]
        _oracle, msgs = check(events)
        assert msgs == []


class TestDirtyAccess:
    def test_dirty_write_and_dirty_read_flagged(self):
        events = [
            ev(0, "begin", tid=1, label="d", keys=[1]),
            ev(1, "read", tid=1, attempt=1, key=1, version=0,
               data=FP_ZERO, nbytes=NB),
            ev(2, "install", tid=1, attempt=1, key=1, version=1,
               data=FP_A),
            ev(3, "abort", tid=1, attempt=1, reason="fault"),
            ev(10, "begin", tid=2, label="d", keys=[1]),
            ev(11, "read", tid=2, attempt=1, key=1, version=1,
               data=FP_A, nbytes=NB),
            ev(12, "install", tid=2, attempt=1, key=1, version=2,
               data=FP_B),
            ev(13, "commit", tid=2, attempt=1, keys=[1]),
        ]
        _oracle, msgs = check(events)
        assert any("dirty write" in m and "txn 1" in m for m in msgs)
        assert any("dirty read" in m and "txn 2" in m for m in msgs)


class TestTornInstall:
    def test_commit_without_install_flagged(self):
        events = [
            ev(0, "begin", tid=1, label="t", keys=[1, 2]),
            ev(1, "read", tid=1, attempt=1, key=1, version=0,
               data=FP_ZERO, nbytes=NB),
            ev(2, "read", tid=1, attempt=1, key=2, version=0,
               data=FP_ZERO, nbytes=NB),
            ev(3, "install", tid=1, attempt=1, key=1, version=1,
               data=FP_A),
            # key 2 never installed, yet the commit names it
            ev(4, "commit", tid=1, attempt=1, keys=[1, 2]),
        ]
        _oracle, msgs = check(events)
        assert any("torn install" in m and "[2]" in m for m in msgs)

    def test_version_gap_flagged(self):
        events = (write_txn(0, 1, key=1, version=1, payload_fp=FP_A)
                  + write_txn(10, 2, key=1, version=3, payload_fp=FP_C,
                              read_version=1, read_fp=FP_A))
        _oracle, msgs = check(events)
        assert any("version 3 installed but version 2 never was" in m
                   for m in msgs)

    def test_busy_bit_in_read_version_flagged(self):
        events = write_txn(0, 1, key=1, version=1, payload_fp=FP_A) + [
            ev(10, "begin", tid=2, label="b", keys=[1]),
            ev(11, "read", tid=2, attempt=1, key=1, version=1 | _BUSY,
               data=FP_A, nbytes=NB),
        ]
        _oracle, msgs = check(events)
        assert any("install busy bit" in m for m in msgs)


class TestTornRead:
    def test_fingerprint_mismatch_flagged(self):
        events = (write_txn(0, 1, key=1, version=1, payload_fp=FP_A)
                  # reader observes bytes matching no install of v1
                  + write_txn(10, 2, key=1, version=2, payload_fp=FP_B,
                              read_version=1, read_fp=FP_C))
        _oracle, msgs = check(events)
        assert any("torn read" in m and "matching no install" in m
                   for m in msgs)

    def test_read_of_never_installed_version_flagged(self):
        events = [
            ev(0, "begin", tid=1, label="t", keys=[1]),
            ev(1, "read", tid=1, attempt=1, key=1, version=7,
               data=FP_A, nbytes=NB),
            ev(2, "install", tid=1, attempt=1, key=1, version=8,
               data=FP_B),
            ev(3, "commit", tid=1, attempt=1, keys=[1]),
        ]
        _oracle, msgs = check(events)
        assert any("no transaction installed" in m for m in msgs)

    def test_nonzero_payload_at_version_zero_flagged(self):
        events = [
            ev(0, "begin", tid=1, label="t", keys=[1]),
            ev(1, "read", tid=1, attempt=1, key=1, version=0,
               data=FP_A, nbytes=NB),
            ev(2, "install", tid=1, attempt=1, key=1, version=1,
               data=FP_B),
            ev(3, "commit", tid=1, attempt=1, keys=[1]),
        ]
        _oracle, msgs = check(events)
        assert any("version 0 but the payload is not zeros" in m
                   for m in msgs)


class TestProtocolBookkeeping:
    def test_double_commit_flagged(self):
        events = write_txn(0, 1, key=1, version=1, payload_fp=FP_A)
        events.append(ev(9, "commit", tid=1, attempt=1, keys=[1]))
        _oracle, msgs = check(events)
        assert any("committed twice" in m for m in msgs)

    def test_commit_after_abort_flagged(self):
        events = [
            ev(0, "begin", tid=1, label="t", keys=[1]),
            ev(1, "read", tid=1, attempt=1, key=1, version=0,
               data=FP_ZERO, nbytes=NB),
            ev(2, "abort", tid=1, attempt=1, reason="conflict"),
            ev(3, "commit", tid=1, attempt=1, keys=[]),
        ]
        _oracle, msgs = check(events)
        assert any("already aborted" in m for m in msgs)

    @pytest.mark.parametrize("version", [0, _BUSY | 1])
    def test_install_at_invalid_version_flagged(self, version):
        events = [
            ev(0, "begin", tid=1, label="t", keys=[1]),
            ev(1, "install", tid=1, attempt=1, key=1, version=version,
               data=FP_A),
        ]
        _oracle, msgs = check(events)
        assert any("invalid version" in m for m in msgs)

    def test_duplicate_install_same_attempt_flagged(self):
        events = [
            ev(0, "begin", tid=1, label="t", keys=[1]),
            ev(1, "install", tid=1, attempt=1, key=1, version=1,
               data=FP_A),
            ev(2, "install", tid=1, attempt=1, key=1, version=2,
               data=FP_B),
        ]
        _oracle, msgs = check(events)
        assert any("installed key 1 twice" in m for m in msgs)
