"""Seeded mutations against the lock oracle: every injected protocol
break on a synthetic trace must be flagged, and the clean version of the
same trace must pass."""

from repro.obs.events import TraceEvent
from repro.verify import LockOracle, TraceView, replay_fresh


def _ev(t, node, etype, **fields):
    return TraceEvent(t, node, etype, fields)


def _lk(t, node, what, token, mode="EXCLUSIVE", mgr="ncosed-0",
        lock=0, **extra):
    f = {"mgr": mgr, "lock": lock, "token": token}
    if what in ("request", "enqueue", "grant"):
        f["mode"] = mode
    f.update(extra)
    return _ev(t, node, f"lock.{what}", **f)


def _replay(events):
    oracles, violations = replay_fresh(TraceView(events), [LockOracle])
    return oracles[0], violations


def _msgs(violations):
    return " | ".join(v["msg"] for v in violations)


class TestCleanTraces:
    def test_fifo_chain_passes(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _lk(2.0, 1, "grant", 7),
            _lk(3.0, 2, "request", 9),
            _lk(4.0, 2, "enqueue", 9, prev=7, ep=0),
            _lk(5.0, 1, "release", 7),
            _lk(6.0, 2, "grant", 9),
            _lk(7.0, 2, "release", 9),
        ]
        oracle, violations = _replay(events)
        assert violations == []
        assert oracle.checked == len(events)

    def test_shared_batch_passes(self):
        events = [
            _lk(0.0, 1, "request", 7, mode="SHARED"),
            _lk(0.5, 2, "request", 9, mode="SHARED"),
            _lk(1.0, 1, "enqueue", 7, mode="SHARED", prev=0, ep=0),
            _lk(1.5, 2, "enqueue", 9, mode="SHARED", prev=7, ep=0),
            _lk(2.0, 1, "grant", 7, mode="SHARED"),
            _lk(2.5, 2, "grant", 9, mode="SHARED"),
            _lk(3.0, 1, "release", 7),
            _lk(3.5, 2, "release", 9),
        ]
        _oracle, violations = _replay(events)
        assert violations == []


class TestMutualExclusion:
    def test_double_exclusive_grant_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(0.5, 2, "request", 9),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _lk(1.5, 2, "enqueue", 9, prev=7, ep=0),
            _lk(2.0, 1, "grant", 7),
            # mutation: 9 granted while 7 still holds
            _lk(3.0, 2, "grant", 9),
        ]
        _oracle, violations = _replay(events)
        assert "exclusive grant" in _msgs(violations)
        assert "while held by" in _msgs(violations)

    def test_shared_grant_under_exclusive_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(0.5, 2, "request", 9, mode="SHARED"),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _lk(1.5, 2, "enqueue", 9, mode="SHARED", prev=7, ep=0),
            _lk(2.0, 1, "grant", 7),
            _lk(3.0, 2, "grant", 9, mode="SHARED"),
        ]
        _oracle, violations = _replay(events)
        assert "shared grant" in _msgs(violations)

    def test_release_by_non_holder_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _lk(2.0, 1, "grant", 7),
            _lk(3.0, 2, "release", 9),
        ]
        _oracle, violations = _replay(events)
        assert "release of lock by non-holder token 9" in _msgs(violations)


class TestFairness:
    def test_overtake_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(0.5, 2, "request", 9),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _lk(1.5, 2, "enqueue", 9, prev=7, ep=0),
            # mutation: 9 jumps the queue — its predecessor 7 was
            # never granted
            _lk(2.0, 2, "grant", 9),
        ]
        _oracle, violations = _replay(events)
        assert "FIFO violation: token 9 granted before its queue " \
               "predecessor 7" in _msgs(violations)

    def test_grant_without_enqueue_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(2.0, 1, "grant", 7),
        ]
        _oracle, violations = _replay(events)
        assert "no matching enqueue" in _msgs(violations)

    def test_retry_may_consume_earlier_attempts_grant(self):
        # FT recovery: 9's first wait aborts, it re-enqueues behind 11,
        # then legally consumes the hand-off earned by its first
        # attempt (prev=7, which released).  Must NOT be flagged.
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(0.5, 2, "request", 9),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _lk(1.5, 2, "enqueue", 9, prev=7, ep=0),
            _lk(2.0, 1, "grant", 7),
            _lk(2.5, 3, "request", 11),
            _lk(3.0, 3, "enqueue", 11, prev=9, ep=0),
            _lk(3.5, 1, "release", 7),
            _lk(4.0, 2, "enqueue", 9, prev=11, ep=0),  # the retry
            _lk(4.5, 2, "grant", 9),
            _lk(5.0, 2, "release", 9),
            _lk(5.5, 3, "grant", 11),
            _lk(6.0, 3, "release", 11),
        ]
        _oracle, violations = _replay(events)
        assert violations == []

    def test_srsl_positional_order_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7, mgr="srsl-0"),
            _lk(0.5, 2, "request", 9, mgr="srsl-0"),
            _lk(1.0, 1, "enqueue", 7, mgr="srsl-0", prev=0, ep=0),
            _lk(1.5, 2, "enqueue", 9, mgr="srsl-0", prev=0, ep=0),
            # mutation: server granted the younger queue entry first
            _lk(2.0, 2, "grant", 9, mgr="srsl-0"),
            _lk(2.5, 2, "release", 9, mgr="srsl-0"),
            _lk(3.0, 1, "grant", 7, mgr="srsl-0"),
        ]
        _oracle, violations = _replay(events)
        assert "SRSL FIFO violation: token 9" in _msgs(violations)


class TestEpochFencing:
    def test_stale_epoch_grant_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _ev(2.0, 0, "lock.reclaim", mgr="ncosed-0", lock=0,
                old_ep=0, new_ep=1),
            # mutation: a grant fenced to the dead epoch slips through
            _lk(3.0, 1, "grant", 7, ep=0),
        ]
        _oracle, violations = _replay(events)
        assert "fenced to stale epoch 0" in _msgs(violations)

    def test_reclaim_epoch_skip_flagged(self):
        events = [
            _ev(1.0, 0, "lock.reclaim", mgr="ncosed-0", lock=0,
                old_ep=0, new_ep=2),
        ]
        _oracle, violations = _replay(events)
        assert "reclaim skipped epochs: 0 -> 2" in _msgs(violations)

    def test_zombie_surviving_reclaim_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _lk(2.0, 1, "grant", 7, ep=0),
            _ev(3.0, 0, "lock.reclaim", mgr="ncosed-0", lock=0,
                old_ep=0, new_ep=1),
            # mutation: no lock.revoke for 7 ever arrives
        ]
        _oracle, violations = _replay(events)
        assert "token 7" in _msgs(violations)
        assert "survived a reclaim without a revoke" in _msgs(violations)

    def test_revoked_holder_not_a_zombie(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _lk(2.0, 1, "grant", 7, ep=0),
            _ev(3.0, 0, "lock.reclaim", mgr="ncosed-0", lock=0,
                old_ep=0, new_ep=1),
            _lk(4.0, 1, "revoke", 7),
        ]
        _oracle, violations = _replay(events)
        assert violations == []


class TestMCSQueueOrder:
    def _trace(self, third_prev):
        # 7 (tail empty), 9 behind 7, 11 behind `third_prev`
        return [
            _lk(0.0, 1, "request", 7, mgr="mcs-0"),
            _lk(0.5, 2, "request", 9, mgr="mcs-0"),
            _lk(1.0, 3, "request", 11, mgr="mcs-0"),
            _lk(1.5, 1, "enqueue", 7, mgr="mcs-0", prev=0, ep=0),
            _lk(2.0, 2, "enqueue", 9, mgr="mcs-0", prev=7, ep=0),
            _lk(2.5, 3, "enqueue", 11, mgr="mcs-0", prev=third_prev,
                ep=0),
            _lk(3.0, 1, "grant", 7, mgr="mcs-0", ep=0),
            _lk(3.5, 1, "release", 7, mgr="mcs-0"),
            _lk(4.0, 2, "grant", 9, mgr="mcs-0", ep=0),
            _lk(4.5, 2, "release", 9, mgr="mcs-0"),
            _lk(5.0, 3, "grant", 11, mgr="mcs-0", ep=0),
            _lk(5.5, 3, "release", 11, mgr="mcs-0"),
        ]

    def test_queue_order_clean(self):
        _oracle, violations = _replay(self._trace(third_prev=9))
        assert violations == []

    def test_grant_order_diverging_from_queue_order_flagged(self):
        # 11 queued behind 7 (already granted AND released, so the
        # generic FIFO check passes) yet is granted right after 9 —
        # queue order 7,9 ... but grant order says 11 skipped the
        # spot its CAS earned.  Only the MCS-specific check sees it.
        _oracle, violations = _replay(self._trace(third_prev=7))
        assert "MCS queue-order violation: grant to token 11" \
            in _msgs(violations)
        assert "previous epoch-0 grant went to 9" in _msgs(violations)


def _alk(t, node, what, token, **extra):
    return _lk(t, node, what, token, mgr="alock-0", **extra)


def _alk_pass(t, node, token, cohort, chain, budget=3):
    """request+enqueue+grant triple for one pass-off link."""
    return [
        _alk(t, node, "request", token),
        _alk(t + 0.1, node, "enqueue", token, prev=0, ep=0,
             cohort=cohort),
        _alk(t + 0.2, node, "grant", token, ep=0, cohort=cohort,
             chain=chain, budget=budget),
    ]


class TestALockCohortDiscipline:
    def test_in_budget_chain_clean(self):
        events = (_alk_pass(0.0, 1, 7, "L", 0)
                  + [_alk(1.0, 1, "release", 7)]
                  + _alk_pass(2.0, 1, 9, "L", 1)
                  + [_alk(3.0, 1, "release", 9)]
                  + _alk_pass(4.0, 2, 11, "R", 0)   # new tournament
                  + [_alk(5.0, 2, "release", 11)])
        _oracle, violations = _replay(events)
        assert violations == []

    def test_budget_overrun_flagged(self):
        events = []
        for i, token in enumerate((7, 9, 11, 13)):   # chain 0..3, budget 3
            events += _alk_pass(10.0 * i, 1, token, "L", i)
            events.append(_alk(10.0 * i + 5.0, 1, "release", token))
        _oracle, violations = _replay(events)
        assert ("cohort pass-off chain position 3 reached the cohort "
                "budget 3") in _msgs(violations)

    def test_cross_cohort_pass_flagged(self):
        events = (_alk_pass(0.0, 1, 7, "L", 0)
                  + [_alk(1.0, 1, "release", 7)]
                  + _alk_pass(2.0, 2, 9, "R", 1))   # chain=1 across cohorts
        _oracle, violations = _replay(events)
        assert "in-budget pass-off crossed cohorts (L -> R)" \
            in _msgs(violations)

    def test_chain_jump_flagged(self):
        events = (_alk_pass(0.0, 1, 7, "L", 0)
                  + [_alk(1.0, 1, "release", 7)]
                  + _alk_pass(2.0, 1, 9, "L", 2))   # 0 -> 2, no chain=1
        _oracle, violations = _replay(events)
        assert "pass-off chain jumped from 0 to 2" in _msgs(violations)

    def test_orphan_chain_continuation_flagged(self):
        _oracle, violations = _replay(_alk_pass(0.0, 1, 7, "L", 1))
        assert ("chain continuation (chain=1) without a same-epoch "
                "predecessor grant") in _msgs(violations)

    def test_missing_arena_fields_flagged(self):
        events = [
            _alk(0.0, 1, "request", 7),
            _alk(0.5, 1, "enqueue", 7, prev=0, ep=0),
            _alk(1.0, 1, "grant", 7, ep=0),   # no cohort/chain/budget
        ]
        _oracle, violations = _replay(events)
        assert "without cohort/chain/budget fields" in _msgs(violations)

    def test_consecutive_wins_past_waiting_rival_flagged(self):
        # rival cohort-R leader queues at t=0; cohort L wins the
        # tournament at t=100 AND again at t=200 with R still waiting
        events = [
            _alk(0.0, 2, "request", 9),
            _alk(0.1, 2, "enqueue", 9, prev=0, ep=0, cohort="R"),
            _alk(100.0, 1, "request", 7),
            _alk(100.1, 1, "enqueue", 7, prev=0, ep=0, cohort="L"),
            _alk(100.2, 1, "grant", 7, ep=0, cohort="L", chain=0,
                 budget=3),
            _alk(150.0, 1, "release", 7),
            _alk(200.0, 1, "request", 11),
            _alk(200.1, 1, "enqueue", 11, prev=0, ep=0, cohort="L"),
            _alk(200.2, 1, "grant", 11, ep=0, cohort="L", chain=0,
                 budget=3),
        ]
        _oracle, violations = _replay(events)
        assert ("cohort L won consecutive tournaments past waiting "
                "rival-cohort leader(s) [9]") in _msgs(violations)

    def test_rival_winning_second_tournament_clean(self):
        # same setup but the rival DOES win the second tournament
        events = [
            _alk(0.0, 2, "request", 9),
            _alk(0.1, 2, "enqueue", 9, prev=0, ep=0, cohort="R"),
            _alk(100.0, 1, "request", 7),
            _alk(100.1, 1, "enqueue", 7, prev=0, ep=0, cohort="L"),
            _alk(100.2, 1, "grant", 7, ep=0, cohort="L", chain=0,
                 budget=3),
            _alk(150.0, 1, "release", 7),
            _alk(200.0, 2, "grant", 9, ep=0, cohort="R", chain=0,
                 budget=3),
            _alk(250.0, 2, "release", 9),
        ]
        _oracle, violations = _replay(events)
        assert violations == []


class TestWordChecks:
    def test_unknown_tail_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _ev(1.0, 1, "lock.word", mgr="ncosed-0", lock=0,
                word=(999 << 32) | 1, ft=False),
        ]
        _oracle, violations = _replay(events)
        assert "tail 999 is not a known token" in _msgs(violations)

    def test_future_epoch_word_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _ev(1.0, 1, "lock.word", mgr="ncosed-0", lock=0,
                word=(5 << 48) | (7 << 24) | 1, ft=True),
        ]
        _oracle, violations = _replay(events)
        assert "future epoch 5" in _msgs(violations)
