"""Seeded mutations against the lock oracle: every injected protocol
break on a synthetic trace must be flagged, and the clean version of the
same trace must pass."""

from repro.obs.events import TraceEvent
from repro.verify import LockOracle, TraceView, replay_fresh


def _ev(t, node, etype, **fields):
    return TraceEvent(t, node, etype, fields)


def _lk(t, node, what, token, mode="EXCLUSIVE", mgr="ncosed-0",
        lock=0, **extra):
    f = {"mgr": mgr, "lock": lock, "token": token}
    if what in ("request", "enqueue", "grant"):
        f["mode"] = mode
    f.update(extra)
    return _ev(t, node, f"lock.{what}", **f)


def _replay(events):
    oracles, violations = replay_fresh(TraceView(events), [LockOracle])
    return oracles[0], violations


def _msgs(violations):
    return " | ".join(v["msg"] for v in violations)


class TestCleanTraces:
    def test_fifo_chain_passes(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _lk(2.0, 1, "grant", 7),
            _lk(3.0, 2, "request", 9),
            _lk(4.0, 2, "enqueue", 9, prev=7, ep=0),
            _lk(5.0, 1, "release", 7),
            _lk(6.0, 2, "grant", 9),
            _lk(7.0, 2, "release", 9),
        ]
        oracle, violations = _replay(events)
        assert violations == []
        assert oracle.checked == len(events)

    def test_shared_batch_passes(self):
        events = [
            _lk(0.0, 1, "request", 7, mode="SHARED"),
            _lk(0.5, 2, "request", 9, mode="SHARED"),
            _lk(1.0, 1, "enqueue", 7, mode="SHARED", prev=0, ep=0),
            _lk(1.5, 2, "enqueue", 9, mode="SHARED", prev=7, ep=0),
            _lk(2.0, 1, "grant", 7, mode="SHARED"),
            _lk(2.5, 2, "grant", 9, mode="SHARED"),
            _lk(3.0, 1, "release", 7),
            _lk(3.5, 2, "release", 9),
        ]
        _oracle, violations = _replay(events)
        assert violations == []


class TestMutualExclusion:
    def test_double_exclusive_grant_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(0.5, 2, "request", 9),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _lk(1.5, 2, "enqueue", 9, prev=7, ep=0),
            _lk(2.0, 1, "grant", 7),
            # mutation: 9 granted while 7 still holds
            _lk(3.0, 2, "grant", 9),
        ]
        _oracle, violations = _replay(events)
        assert "exclusive grant" in _msgs(violations)
        assert "while held by" in _msgs(violations)

    def test_shared_grant_under_exclusive_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(0.5, 2, "request", 9, mode="SHARED"),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _lk(1.5, 2, "enqueue", 9, mode="SHARED", prev=7, ep=0),
            _lk(2.0, 1, "grant", 7),
            _lk(3.0, 2, "grant", 9, mode="SHARED"),
        ]
        _oracle, violations = _replay(events)
        assert "shared grant" in _msgs(violations)

    def test_release_by_non_holder_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _lk(2.0, 1, "grant", 7),
            _lk(3.0, 2, "release", 9),
        ]
        _oracle, violations = _replay(events)
        assert "release of lock by non-holder token 9" in _msgs(violations)


class TestFairness:
    def test_overtake_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(0.5, 2, "request", 9),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _lk(1.5, 2, "enqueue", 9, prev=7, ep=0),
            # mutation: 9 jumps the queue — its predecessor 7 was
            # never granted
            _lk(2.0, 2, "grant", 9),
        ]
        _oracle, violations = _replay(events)
        assert "FIFO violation: token 9 granted before its queue " \
               "predecessor 7" in _msgs(violations)

    def test_grant_without_enqueue_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(2.0, 1, "grant", 7),
        ]
        _oracle, violations = _replay(events)
        assert "no matching enqueue" in _msgs(violations)

    def test_retry_may_consume_earlier_attempts_grant(self):
        # FT recovery: 9's first wait aborts, it re-enqueues behind 11,
        # then legally consumes the hand-off earned by its first
        # attempt (prev=7, which released).  Must NOT be flagged.
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(0.5, 2, "request", 9),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _lk(1.5, 2, "enqueue", 9, prev=7, ep=0),
            _lk(2.0, 1, "grant", 7),
            _lk(2.5, 3, "request", 11),
            _lk(3.0, 3, "enqueue", 11, prev=9, ep=0),
            _lk(3.5, 1, "release", 7),
            _lk(4.0, 2, "enqueue", 9, prev=11, ep=0),  # the retry
            _lk(4.5, 2, "grant", 9),
            _lk(5.0, 2, "release", 9),
            _lk(5.5, 3, "grant", 11),
            _lk(6.0, 3, "release", 11),
        ]
        _oracle, violations = _replay(events)
        assert violations == []

    def test_srsl_positional_order_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7, mgr="srsl-0"),
            _lk(0.5, 2, "request", 9, mgr="srsl-0"),
            _lk(1.0, 1, "enqueue", 7, mgr="srsl-0", prev=0, ep=0),
            _lk(1.5, 2, "enqueue", 9, mgr="srsl-0", prev=0, ep=0),
            # mutation: server granted the younger queue entry first
            _lk(2.0, 2, "grant", 9, mgr="srsl-0"),
            _lk(2.5, 2, "release", 9, mgr="srsl-0"),
            _lk(3.0, 1, "grant", 7, mgr="srsl-0"),
        ]
        _oracle, violations = _replay(events)
        assert "SRSL FIFO violation: token 9" in _msgs(violations)


class TestEpochFencing:
    def test_stale_epoch_grant_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _ev(2.0, 0, "lock.reclaim", mgr="ncosed-0", lock=0,
                old_ep=0, new_ep=1),
            # mutation: a grant fenced to the dead epoch slips through
            _lk(3.0, 1, "grant", 7, ep=0),
        ]
        _oracle, violations = _replay(events)
        assert "fenced to stale epoch 0" in _msgs(violations)

    def test_reclaim_epoch_skip_flagged(self):
        events = [
            _ev(1.0, 0, "lock.reclaim", mgr="ncosed-0", lock=0,
                old_ep=0, new_ep=2),
        ]
        _oracle, violations = _replay(events)
        assert "reclaim skipped epochs: 0 -> 2" in _msgs(violations)

    def test_zombie_surviving_reclaim_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _lk(2.0, 1, "grant", 7, ep=0),
            _ev(3.0, 0, "lock.reclaim", mgr="ncosed-0", lock=0,
                old_ep=0, new_ep=1),
            # mutation: no lock.revoke for 7 ever arrives
        ]
        _oracle, violations = _replay(events)
        assert "token 7" in _msgs(violations)
        assert "survived a reclaim without a revoke" in _msgs(violations)

    def test_revoked_holder_not_a_zombie(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _lk(1.0, 1, "enqueue", 7, prev=0, ep=0),
            _lk(2.0, 1, "grant", 7, ep=0),
            _ev(3.0, 0, "lock.reclaim", mgr="ncosed-0", lock=0,
                old_ep=0, new_ep=1),
            _lk(4.0, 1, "revoke", 7),
        ]
        _oracle, violations = _replay(events)
        assert violations == []


class TestWordChecks:
    def test_unknown_tail_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _ev(1.0, 1, "lock.word", mgr="ncosed-0", lock=0,
                word=(999 << 32) | 1, ft=False),
        ]
        _oracle, violations = _replay(events)
        assert "tail 999 is not a known token" in _msgs(violations)

    def test_future_epoch_word_flagged(self):
        events = [
            _lk(0.0, 1, "request", 7),
            _ev(1.0, 1, "lock.word", mgr="ncosed-0", lock=0,
                word=(5 << 48) | (7 << 24) | 1, ft=True),
        ]
        _oracle, violations = _replay(events)
        assert "future epoch 5" in _msgs(violations)
