"""The packaged check suite end to end: scenario replays stay clean
under both kernels, shrinking produces small reproducers, the
metamorphic sweep agrees across kernels, and the CLI wires it all up."""

import json
from collections import Counter

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.obs.events import TraceEvent
from repro.txn import build_txn_scenario
from repro.verify import (CHECKS, LockOracle, canonical_trace_sha,
                          check_scenario, check_trace, metamorphic_sweep,
                          run_check, run_suite, shrink)
from repro.verify.suites import _kernel

FAST_CHECKS = ("ncosed", "dqnl", "srsl", "ddss", "cache-bcc",
               "txn-occ", "txn-2pl")


class TestPackagedChecks:
    @pytest.mark.parametrize("name", sorted(CHECKS))
    def test_check_is_clean_and_non_vacuous(self, name):
        r = run_check(name, seed=0)
        assert r["verdict"] == "ok", r
        primary = CHECKS[name][2]
        assert r["oracles"][primary]["checked"] > 0
        assert r["sanitizers"] == []

    def test_slow_kernel_agrees(self):
        for name in ("ncosed", "ddss"):
            r = run_check(name, seed=0, kernel="slow")
            assert r["verdict"] == "ok", r

    def test_unknown_check_rejected(self):
        with pytest.raises(ConfigError, match="unknown check"):
            run_check("nope")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigError, match="unknown kernel"):
            run_check("ncosed", kernel="warp")

    def test_run_suite_summary(self):
        rep = run_suite(checks=["ncosed", "cache-bcc"], seed=0)
        assert rep["verdict"] == "ok"
        assert rep["failed"] == []
        assert len(rep["checks"]) == 2


class TestKernelEquivalence:
    @pytest.mark.parametrize("name", FAST_CHECKS)
    def test_canonical_sha_matches_across_kernels(self, name):
        """Three-way: ladder (fast), heap-agenda fallback, naive slow."""
        fast = check_scenario(check=name, seed=0, kernel="fast")
        heap = check_scenario(check=name, seed=0, kernel="heap")
        slow = check_scenario(check=name, seed=0, kernel="slow")
        assert fast["verdict"] == heap["verdict"] == slow["verdict"] == "ok"
        assert fast["trace_sha"] == heap["trace_sha"] == slow["trace_sha"]
        assert fast["events"] == heap["events"] == slow["events"]

    def test_canonical_sha_ignores_same_instant_cross_node_order(self):
        a = TraceEvent(1.0, 0, "cache.miss", {"doc": 1})
        b = TraceEvent(1.0, 1, "cache.miss", {"doc": 2})
        doc1 = {"sim_now_us": 2.0, "emitted": 2,
                "events": [list(a), list(b)]}
        doc2 = {"sim_now_us": 2.0, "emitted": 2,
                "events": [list(b), list(a)]}
        assert canonical_trace_sha(doc1) == canonical_trace_sha(doc2)

    def test_canonical_sha_sees_field_changes(self):
        a = TraceEvent(1.0, 0, "cache.miss", {"doc": 1})
        b = TraceEvent(1.0, 0, "cache.miss", {"doc": 2})
        doc1 = {"sim_now_us": 2.0, "emitted": 1, "events": [list(a)]}
        doc2 = {"sim_now_us": 2.0, "emitted": 1, "events": [list(b)]}
        assert canonical_trace_sha(doc1) != canonical_trace_sha(doc2)


class TestTxnMetamorphic:
    """Kernel × seed sweep over the transaction scenario: the fast and
    slow event kernels must produce byte-identical canonical trace
    exports (same-instant cross-node ties normalized, as everywhere
    else in the suite) and identical commit/abort tallies."""

    @pytest.mark.parametrize("variant", ["occ", "2pl", "mixed"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_kernels_agree_on_trace_and_outcomes(self, variant, seed):
        runs = {}
        for kernel in ("fast", "slow"):
            with _kernel(kernel):
                obs, stats = build_txn_scenario(
                    variant, seed=seed, n_nodes=3, n_keys=3,
                    n_workers=4, txns_per_worker=3)
            doc = obs.trace_dict()
            counts = Counter(e[2] for e in doc["events"])
            runs[kernel] = {
                "sha": canonical_trace_sha(doc),
                "emitted": doc["emitted"],
                "txn.commit": counts["txn.commit"],
                "txn.abort": counts["txn.abort"],
                "commits": stats["commits"],
                "aborts": stats["aborts"],
                "conserved": stats["conserved"],
            }
        assert runs["fast"] == runs["slow"]
        assert runs["fast"]["txn.commit"] > 0
        assert runs["fast"]["conserved"]

    def test_metamorphic_sweep_covers_txn_checks(self):
        rep = metamorphic_sweep(checks=["txn-occ", "txn-2pl"],
                                seeds=(0,), node_counts=(0,), workers=0)
        assert rep["verdict"] == "ok"
        assert rep["pairs"] == 2
        assert rep["kernel_mismatches"] == []


class TestShrink:
    def test_clean_trace_shrinks_to_none(self):
        events = [TraceEvent(1.0, 1, "lock.request",
                             {"mgr": "ncosed-0", "lock": 0, "token": 7,
                              "mode": "EXCLUSIVE"})]
        assert shrink(events, [LockOracle]) is None

    def test_reproducer_is_smaller_and_still_fails(self):
        def lk(t, what, token, lock=0, **extra):
            f = {"mgr": "ncosed-0", "lock": lock, "token": token,
                 "mode": "EXCLUSIVE"}
            f.update(extra)
            return TraceEvent(t, 1, f"lock.{what}", f)

        # clean traffic on lock 1 is noise; the double grant is on lock 0
        events = []
        for i in range(8):
            tok = 100 + i
            events += [lk(10.0 * i, "request", tok, lock=1),
                       lk(10.0 * i + 1, "enqueue", tok, lock=1,
                          prev=0, ep=0),
                       lk(10.0 * i + 2, "grant", tok, lock=1),
                       lk(10.0 * i + 3, "release", tok, lock=1)]
        events += [lk(100.0, "request", 7),
                   lk(101.0, "request", 9),
                   lk(102.0, "enqueue", 7, prev=0, ep=0),
                   lk(103.0, "enqueue", 9, prev=7, ep=0),
                   lk(104.0, "grant", 7),
                   lk(105.0, "grant", 9),  # the injected double grant
                   lk(106.0, "release", 7)]

        rep = shrink(events, [LockOracle])
        assert rep is not None
        assert rep["original_events"] == len(events)
        assert rep["kept_events"] < rep["original_events"]
        # the noise on lock 1 must be gone from the reproducer
        assert all(ev.fields["lock"] == 0 for ev in rep["events"])
        assert "exclusive grant" in rep["violation"]["msg"]


class TestTraceRoundtrip:
    def test_exported_trace_replays_clean(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["obs", "run", "locks", "--trace", str(path)]) == 0
        r = check_trace(str(path))
        assert r["verdict"] == "ok"
        assert r["trace"] == str(path)
        assert r["oracles"]["locks"]["checked"] > 0

    def test_non_trace_json_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ConfigError, match="repro-trace-v1"):
            check_trace(str(path))


class TestMetamorphic:
    def test_sweep_smoke(self):
        rep = metamorphic_sweep(checks=["ncosed"], seeds=(0,),
                                node_counts=(0,), workers=0)
        assert rep["verdict"] == "ok"
        assert rep["runs"] == 3  # fast + heap + slow
        assert rep["kernels"] == ["fast", "heap", "slow"]
        assert rep["pairs"] == 1
        assert rep["kernel_mismatches"] == []
        assert rep["violations"] == []

    def test_unknown_check_rejected(self):
        with pytest.raises(ConfigError, match="unknown check"):
            metamorphic_sweep(checks=["nope"], seeds=(0,))


class TestCheckCli:
    def test_list(self, capsys):
        assert main(["check", "list"]) == 0
        assert capsys.readouterr().out.split() == sorted(CHECKS)

    def test_run_writes_verdict_json(self, tmp_path, capsys):
        path = tmp_path / "verdict.json"
        assert main(["check", "run", "ncosed",
                     "--json", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["verdict"] == "ok"
        assert doc["results"][0]["check"] == "ncosed"
        out = capsys.readouterr().out
        assert "verdict=ok" in out
        assert "1/1 checks ok" in out

    def test_run_both_kernels(self, capsys):
        assert main(["check", "run", "srsl", "--both-kernels"]) == 0
        out = capsys.readouterr().out
        assert "[srsl] [fast]" in out
        assert "[srsl] [slow]" in out

    def test_unknown_name_is_usage_error(self, capsys):
        assert main(["check", "run", "nope"]) == 2
        assert "unknown check" in capsys.readouterr().err

    def test_trace_requires_path(self, capsys):
        assert main(["check", "trace"]) == 2

    def test_trace_subcommand(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["obs", "run", "locks", "--trace", str(path)]) == 0
        assert main(["check", "trace", str(path)]) == 0
        assert "verdict=ok" in capsys.readouterr().out

    def test_meta_subcommand(self, tmp_path, capsys):
        path = tmp_path / "meta.json"
        assert main(["check", "meta", "srsl", "--seeds", "0",
                     "--json", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["verdict"] == "ok"
        assert doc["pairs"] == 1
        assert "kernel_mismatches=0" in capsys.readouterr().out
