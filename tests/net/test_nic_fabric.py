"""Tests for NIC verbs and fabric timing/contention."""

import pytest

from repro.errors import ConfigError, ProtectionError, RdmaError
from repro.net import Cluster, NetworkParams


@pytest.fixture
def ib():
    return Cluster(n_nodes=4, params=NetworkParams.infiniband(), seed=1)


def run_proc(cluster, gen):
    p = cluster.env.process(gen)
    cluster.env.run_until_event(p)
    return p.value


class TestTwoSided:
    def test_send_recv_payload(self, ib):
        a, b = ib.nodes[0], ib.nodes[1]

        def sender(env):
            yield a.nic.send(b.id, payload={"op": "hello"}, size=100, tag="t")

        def receiver(env):
            msg = yield b.nic.recv(tag="t")
            return msg

        ib.env.process(sender(ib.env))
        p = ib.env.process(receiver(ib.env))
        ib.env.run()
        msg = p.value
        assert msg.payload == {"op": "hello"}
        assert msg.src == a.id and msg.dst == b.id
        assert msg.arrived_at > msg.sent_at

    def test_small_send_one_way_latency_is_microseconds(self, ib):
        a, b = ib.nodes[0], ib.nodes[1]

        def receiver(env):
            msg = yield b.nic.recv()
            return msg.arrived_at - msg.sent_at

        def sender(env):
            yield a.nic.send(b.id, size=1)

        ib.env.process(sender(ib.env))
        p = ib.env.process(receiver(ib.env))
        ib.env.run()
        # IB small message: a few microseconds one-way.
        assert 1.0 < p.value < 8.0

    def test_tags_demultiplex(self, ib):
        a, b = ib.nodes[0], ib.nodes[1]

        def sender(env):
            yield a.nic.send(b.id, payload="for-y", tag="y")
            yield a.nic.send(b.id, payload="for-x", tag="x")

        def receiver(env):
            mx = yield b.nic.recv(tag="x")
            my = yield b.nic.recv(tag="y")
            return (mx.payload, my.payload)

        ib.env.process(sender(ib.env))
        p = ib.env.process(receiver(ib.env))
        ib.env.run()
        assert p.value == ("for-x", "for-y")

    def test_send_wait_completes_on_arrival(self, ib):
        a, b = ib.nodes[0], ib.nodes[1]

        def sender(env):
            msg = yield a.nic.send_wait(b.id, size=1000)
            return env.now, msg.arrived_at

        p = ib.env.process(sender(ib.env))
        ib.env.run()
        now, arrived = p.value
        assert now == pytest.approx(arrived)

    def test_try_recv_and_pending(self, ib):
        a, b = ib.nodes[0], ib.nodes[1]
        ok, _ = b.nic.try_recv()
        assert not ok

        def sender(env):
            yield a.nic.send(b.id, payload=1)

        ib.env.process(sender(ib.env))
        ib.env.run()
        assert b.nic.pending() == 1
        ok, msg = b.nic.try_recv()
        assert ok and msg.payload == 1

    def test_fifo_per_tag(self, ib):
        a, b = ib.nodes[0], ib.nodes[1]

        def sender(env):
            for i in range(5):
                yield a.nic.send(b.id, payload=i, size=10)
                yield env.timeout(1.0)

        def receiver(env):
            seen = []
            for _ in range(5):
                msg = yield b.nic.recv()
                seen.append(msg.payload)
            return seen

        ib.env.process(sender(ib.env))
        p = ib.env.process(receiver(ib.env))
        ib.env.run()
        assert p.value == [0, 1, 2, 3, 4]


class TestOneSided:
    def test_rdma_read_returns_remote_bytes(self, ib):
        a, b = ib.nodes[0], ib.nodes[1]
        region = b.memory.register(256)
        region.write(10, b"paper2007")

        def proc(env):
            data = yield a.nic.rdma_read(b.id, region.addr + 10,
                                         region.rkey, 9)
            return data

        assert run_proc(ib, proc(ib.env)) == b"paper2007"

    def test_rdma_read_small_rtt_calibration(self, ib):
        a, b = ib.nodes[0], ib.nodes[1]
        region = b.memory.register(64)

        def proc(env):
            t0 = env.now
            yield a.nic.rdma_read(b.id, region.addr, region.rkey, 8)
            return env.now - t0

        rtt = run_proc(ib, proc(ib.env))
        # Paper-era IB RDMA read RTT ~10us; accept 5..20.
        assert 5.0 < rtt < 20.0

    def test_rdma_write_modifies_remote_memory(self, ib):
        a, b = ib.nodes[0], ib.nodes[1]
        region = b.memory.register(64)

        def proc(env):
            yield a.nic.rdma_write(b.id, region.addr, region.rkey, b"WXYZ")
            return None

        run_proc(ib, proc(ib.env))
        assert region.read(0, 4) == b"WXYZ"

    def test_rdma_read_bandwidth_term(self, ib):
        a, b = ib.nodes[0], ib.nodes[1]
        region = b.memory.register(1 << 20)

        def timed(env, nbytes):
            t0 = env.now
            yield a.nic.rdma_read(b.id, region.addr, region.rkey, nbytes)
            return env.now - t0

        t_small = run_proc(ib, timed(ib.env, 8))
        t_large = run_proc(ib, timed(ib.env, 512 * 1024))
        ser = 512 * 1024 / ib.params.bandwidth_bpus
        assert t_large > ser  # dominated by serialization
        assert t_large > 10 * t_small

    def test_wire_padding_inflates_time_only(self, ib):
        a, b = ib.nodes[0], ib.nodes[1]
        region = b.memory.register(64)
        region.write(0, b"dirent")

        def timed(env, wire):
            t0 = env.now
            data = yield a.nic.rdma_read(b.id, region.addr, region.rkey, 6,
                                         wire_bytes=wire)
            return data, env.now - t0

        d1, t1 = run_proc(ib, timed(ib.env, 6))
        d2, t2 = run_proc(ib, timed(ib.env, 64 * 1024))
        assert d1 == d2 == b"dirent"
        assert t2 > t1 + 50

    def test_cas_roundtrip(self, ib):
        a, b = ib.nodes[0], ib.nodes[1]
        region = b.memory.register(8)
        region.write_u64(0, 5)

        def proc(env):
            old = yield a.nic.cas(b.id, region.addr, region.rkey, 5, 77)
            return old

        assert run_proc(ib, proc(ib.env)) == 5
        assert region.read_u64(0) == 77

    def test_faa_roundtrip(self, ib):
        a, b = ib.nodes[0], ib.nodes[1]
        region = b.memory.register(8)

        def proc(env):
            o1 = yield a.nic.faa(b.id, region.addr, region.rkey, 3)
            o2 = yield a.nic.faa(b.id, region.addr, region.rkey, 4)
            return o1, o2

        assert run_proc(ib, proc(ib.env)) == (0, 3)
        assert region.read_u64(0) == 7

    def test_concurrent_cas_only_one_wins(self, ib):
        """Two nodes CAS the same word concurrently: exactly one succeeds."""
        b = ib.nodes[2]
        region = b.memory.register(8)
        results = []

        def contender(env, node, tag):
            old = yield node.nic.cas(b.id, region.addr, region.rkey, 0, tag)
            results.append((tag, old))

        ib.env.process(contender(ib.env, ib.nodes[0], 100))
        ib.env.process(contender(ib.env, ib.nodes[1], 200))
        ib.env.run()
        winners = [tag for tag, old in results if old == 0]
        assert len(winners) == 1
        assert region.read_u64(0) == winners[0]

    def test_protection_error_propagates_to_caller(self, ib):
        a, b = ib.nodes[0], ib.nodes[1]
        region = b.memory.register(8)

        def proc(env):
            try:
                yield a.nic.rdma_read(b.id, region.addr, region.rkey ^ 1, 8)
            except ProtectionError:
                return "denied"

        assert run_proc(ib, proc(ib.env)) == "denied"

    def test_rdma_refused_without_hardware_support(self):
        cluster = Cluster(n_nodes=2, params=NetworkParams.tcp_gige())
        a, b = cluster.nodes
        with pytest.raises(RdmaError):
            a.nic.rdma_read(b.id, 0, 0, 8)

    def test_remote_key_helpers(self, ib):
        a, b = ib.nodes[0], ib.nodes[1]
        region = b.memory.register(64)
        key = region.remote_key()

        def proc(env):
            yield a.nic.write_key(key, b"\x00" * 8, offset=8)
            yield a.nic.faa_key(key, 8, 41)
            old = yield a.nic.faa_key(key, 8, 1)
            data = yield a.nic.read_key(key, offset=8, length=8)
            return old, data

        old, data = run_proc(ib, proc(ib.env))
        assert old == 41
        assert int.from_bytes(data, "big") == 42


class TestFabric:
    def test_same_node_transfer_is_local(self, ib):
        ev = ib.fabric.transfer(0, 0, 10_000)
        ib.env.run_until_event(ev)
        assert ib.env.now == pytest.approx(ib.params.local_op_us)

    def test_unknown_node_rejected(self, ib):
        with pytest.raises(ConfigError):
            ib.fabric.transfer(0, 99, 8)

    def test_negative_bytes_rejected(self, ib):
        with pytest.raises(ConfigError):
            ib.fabric.transfer(0, 1, -1)

    def test_egress_contention_serializes(self, ib):
        """Two large transfers from one node take ~2x one transfer."""
        nbytes = 900_000  # 1000us serialization at 900 B/us
        done = []

        def xfer(env):
            ev = ib.fabric.transfer(0, 1, nbytes)
            yield ev
            done.append(env.now)

        ib.env.process(xfer(ib.env))
        ib.env.process(xfer(ib.env))
        ib.env.run()
        assert done[0] == pytest.approx(1000, rel=0.05)
        assert done[1] == pytest.approx(2000, rel=0.05)

    def test_transfers_from_distinct_nodes_overlap(self, ib):
        nbytes = 900_000
        done = []

        def xfer(env, src):
            yield ib.fabric.transfer(src, 3, nbytes)
            done.append(env.now)

        ib.env.process(xfer(ib.env, 0))
        ib.env.process(xfer(ib.env, 1))
        ib.env.run()
        assert max(done) == pytest.approx(1000, rel=0.05)

    def test_byte_accounting(self, ib):
        ib.fabric.transfer(0, 1, 100)
        ib.fabric.transfer(1, 2, 50)
        ib.env.run()
        assert ib.fabric.bytes_moved == 150
        assert ib.fabric.transfers == 2


class TestMulticastAccounting:
    def test_one_injection_regardless_of_group_size(self, ib):
        """Switch replication: the payload is charged to the fabric
        exactly once, not once per destination."""
        ev = ib.fabric.multicast(0, [1, 2, 3], 4096)
        ib.env.run_until_event(ev)
        assert ib.fabric.bytes_moved == 4096
        assert ib.fabric.transfers == 1

    def test_multicast_vs_unicast_loop_accounting(self, ib):
        ib.fabric.multicast(0, [1, 2, 3], 1000)
        ib.env.run()
        mc_bytes, mc_xfers = ib.fabric.bytes_moved, ib.fabric.transfers
        for dst in (1, 2, 3):
            ib.fabric.transfer(0, dst, 1000)
        ib.env.run()
        assert ib.fabric.bytes_moved - mc_bytes == 3 * mc_bytes
        assert ib.fabric.transfers - mc_xfers == 3

    def test_multicast_completion_time_independent_of_group(self):
        times = {}
        for n_dst in (1, 3):
            c = Cluster(n_nodes=4, params=NetworkParams.infiniband(),
                        seed=1)
            ev = c.fabric.multicast(0, list(range(1, 1 + n_dst)), 8192)
            c.env.run_until_event(ev)
            times[n_dst] = c.env.now
        assert times[1] == times[3]

    def test_multicast_validation(self, ib):
        with pytest.raises(ConfigError):
            ib.fabric.multicast(0, [], 64)
        with pytest.raises(ConfigError):
            ib.fabric.multicast(99, [1], 64)
        with pytest.raises(ConfigError):
            ib.fabric.multicast(0, [99], 64)
        with pytest.raises(ConfigError):
            ib.fabric.multicast(0, [1], -1)


class TestEgressQueue:
    def test_queue_len_reflects_waiting_transfers(self, ib):
        """Three concurrent sends: one serializing, two queued behind it
        on the sender's egress link."""
        nbytes = 900_000  # ~1000us serialization each
        for _ in range(3):
            ib.fabric.transfer(0, 1, nbytes)
        seen = []

        def watch(env):
            yield env.timeout(500.0)   # first transfer mid-serialization
            seen.append(ib.fabric.egress_queue_len(0))
            yield env.timeout(1_000.0)  # second now holds the link
            seen.append(ib.fabric.egress_queue_len(0))

        ib.env.process(watch(ib.env))
        ib.env.run()
        assert seen == [2, 1]
        assert ib.fabric.egress_queue_len(0) == 0  # drained

    def test_queue_empty_without_contention(self, ib):
        ib.fabric.transfer(0, 1, 64)
        ib.fabric.transfer(1, 2, 64)
        ib.env.run()
        for node_id in range(4):
            assert ib.fabric.egress_queue_len(node_id) == 0


class TestClusterBuilder:
    def test_nodes_named_and_ided(self):
        c = Cluster(names=["proxy0", "proxy1", "app0"])
        assert [n.name for n in c.nodes] == ["proxy0", "proxy1", "app0"]
        assert [n.id for n in c.nodes] == [0, 1, 2]
        assert len(c) == 3

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            Cluster()
        with pytest.raises(ConfigError):
            Cluster(n_nodes=2, names=["a"])

    def test_deterministic_rng_streams(self):
        c1 = Cluster(n_nodes=1, seed=42)
        c2 = Cluster(n_nodes=1, seed=42)
        assert (c1.rng.get("x").random(5) == c2.rng.get("x").random(5)).all()
