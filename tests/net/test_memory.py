"""Unit + property tests for registered memory and remote atomics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BoundsError, ConfigError, ProtectionError
from repro.net.memory import MemoryManager, RemoteKey

U64 = 1 << 64


@pytest.fixture
def mm():
    return MemoryManager(node_id=3)


class TestRegionBasics:
    def test_register_and_rw(self, mm):
        r = mm.register(128, name="buf")
        r.write(0, b"hello")
        assert r.read(0, 5) == b"hello"
        assert r.node_id == 3

    def test_regions_have_distinct_addrs_and_rkeys(self, mm):
        rs = [mm.register(64) for _ in range(10)]
        addrs = {r.addr for r in rs}
        rkeys = {r.rkey for r in rs}
        assert len(addrs) == 10
        assert len(rkeys) == 10

    def test_zero_length_rejected(self, mm):
        with pytest.raises(ConfigError):
            mm.register(0)

    def test_out_of_bounds_local_access(self, mm):
        r = mm.register(16)
        with pytest.raises(BoundsError):
            r.read(10, 10)
        with pytest.raises(BoundsError):
            r.write(-1, b"x")

    def test_u64_roundtrip_big_endian(self, mm):
        r = mm.register(16)
        r.write_u64(0, 0x0102030405060708)
        assert r.read(0, 8) == bytes([1, 2, 3, 4, 5, 6, 7, 8])
        assert r.read_u64(0) == 0x0102030405060708

    def test_u32_roundtrip(self, mm):
        r = mm.register(8)
        r.write_u32(4, 0xDEADBEEF)
        assert r.read_u32(4) == 0xDEADBEEF

    def test_registered_bytes_accounting(self, mm):
        mm.register(100)
        mm.register(28)
        assert mm.registered_bytes == 128


class TestRemoteAccessPath:
    def test_rdma_read_write(self, mm):
        r = mm.register(64)
        mm.rdma_write(r.addr + 8, r.rkey, b"remote")
        assert mm.rdma_read(r.addr + 8, r.rkey, 6) == b"remote"
        assert r.read(8, 6) == b"remote"

    def test_wrong_rkey_rejected(self, mm):
        r = mm.register(64)
        with pytest.raises(ProtectionError):
            mm.rdma_read(r.addr, r.rkey ^ 1, 8)

    def test_unmapped_address_rejected(self, mm):
        with pytest.raises(ProtectionError):
            mm.rdma_read(0x5, 0, 8)

    def test_access_crossing_region_end_rejected(self, mm):
        r = mm.register(16)
        with pytest.raises(BoundsError):
            mm.rdma_read(r.addr + 12, r.rkey, 8)

    def test_deregistered_region_is_protected(self, mm):
        r = mm.register(64)
        mm.deregister(r)
        with pytest.raises(ProtectionError):
            mm.rdma_read(r.addr, r.rkey, 8)

    def test_access_via_interior_address(self, mm):
        r = mm.register(64)
        r.write(32, b"\xab")
        assert mm.rdma_read(r.addr + 32, r.rkey, 1) == b"\xab"


class TestAtomics:
    def test_cas_success(self, mm):
        r = mm.register(8)
        r.write_u64(0, 7)
        old = mm.cas64(r.addr, r.rkey, 7, 99)
        assert old == 7
        assert r.read_u64(0) == 99

    def test_cas_failure_leaves_memory(self, mm):
        r = mm.register(8)
        r.write_u64(0, 7)
        old = mm.cas64(r.addr, r.rkey, 6, 99)
        assert old == 7
        assert r.read_u64(0) == 7

    def test_faa_returns_old_and_adds(self, mm):
        r = mm.register(8)
        r.write_u64(0, 10)
        assert mm.faa64(r.addr, r.rkey, 5) == 10
        assert r.read_u64(0) == 15

    def test_faa_wraps_at_64_bits(self, mm):
        r = mm.register(8)
        r.write_u64(0, U64 - 1)
        assert mm.faa64(r.addr, r.rkey, 2) == U64 - 1
        assert r.read_u64(0) == 1

    @given(initial=st.integers(0, U64 - 1), adds=st.lists(
        st.integers(0, 2**32), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_faa_sequence_sums_mod_2_64(self, initial, adds):
        mm = MemoryManager(0)
        r = mm.register(8)
        r.write_u64(0, initial)
        for a in adds:
            mm.faa64(r.addr, r.rkey, a)
        assert r.read_u64(0) == (initial + sum(adds)) % U64

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_cas_linearizes_like_reference(self, ops):
        """CAS against the region must match a pure-python reference."""
        mm = MemoryManager(0)
        r = mm.register(8)
        model = 0
        for compare, swap in ops:
            old = mm.cas64(r.addr, r.rkey, compare, swap)
            assert old == model
            if model == compare:
                model = swap
        assert r.read_u64(0) == model


class TestRemoteKey:
    def test_slice_bounds(self):
        key = RemoteKey(node=1, addr=0x100, rkey=5, length=64)
        sub = key.slice(16, 8)
        assert (sub.addr, sub.length) == (0x110, 8)
        with pytest.raises(BoundsError):
            key.slice(60, 8)
        with pytest.raises(BoundsError):
            key.slice(-1)

    def test_slice_default_length_to_end(self):
        key = RemoteKey(node=1, addr=0, rkey=5, length=64)
        assert key.slice(48).length == 16

    def test_region_remote_key_roundtrip(self):
        mm = MemoryManager(7)
        r = mm.register(32)
        key = r.remote_key()
        assert key == RemoteKey(7, r.addr, r.rkey, 32)
