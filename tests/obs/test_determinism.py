"""Determinism regression: identical seeds produce byte-identical JSON
metric exports (satellite of the obs tentpole).

The export has sorted keys, simulated timestamps only (no wall clock),
and names drawn from per-Environment id streams (no ``id()``/hash
order) — so two runs of the same scenario from the same seed serialize
to the same bytes, and the export is stable across processes too.
"""

import json

import pytest

from repro.obs.scenarios import SCENARIOS, run_scenario


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_same_seed_byte_identical_export(name):
    a = run_scenario(name, seed=3, strict=False).export_json()
    b = run_scenario(name, seed=3, strict=False).export_json()
    assert a == b


def test_different_seed_diverges():
    a = run_scenario("locks", seed=0, strict=False).export_json()
    b = run_scenario("locks", seed=1, strict=False).export_json()
    assert a != b


def test_export_roundtrips_as_json(tmp_path):
    path = tmp_path / "obs.json"
    obs = run_scenario("locks", seed=2, strict=False)
    text = obs.export_json(str(path))
    on_disk = path.read_text(encoding="utf-8")
    assert on_disk == text + "\n"
    data = json.loads(on_disk)
    assert data["metrics"]["counters"]["dlm.grants"] > 0
    assert data["events"]["emitted"] == obs.trace.emitted
    assert set(data["sanitizers"]) == set(obs.sanitizers)


def test_export_keys_sorted():
    text = run_scenario("flow", seed=0, strict=False).export_json()
    data = json.loads(text)
    counters = list(data["metrics"]["counters"])
    assert counters == sorted(counters)
