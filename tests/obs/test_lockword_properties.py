"""Property-based tests (seeded random, stdlib-only) for the N-CoSED
lock word: encode/decode round-trips, and random CAS/FAA/reclaim
interleavings that must keep the lock-word sanitizer silent while any
mutation of a clean word must trip it."""

import random

import pytest

from repro.errors import SanitizerError
from repro.sim import Environment, spawn_child
from repro.obs import LockWordSanitizer, Tracer
from repro.dlm.ncosed import (
    _EP_MASK,
    _F24,
    _LOW32,
    pack,
    pack_ft,
    unpack,
    unpack_ft,
)

N_CASES = 300


class TestRoundTrip:
    def test_plain_pack_unpack(self):
        rng = random.Random(1)
        for _ in range(N_CASES):
            tail = rng.randrange(_LOW32 + 1)
            count = rng.randrange(_LOW32 + 1)
            assert unpack(pack(tail, count)) == (tail, count)

    def test_ft_pack_unpack(self):
        rng = random.Random(2)
        for _ in range(N_CASES):
            fields = (rng.randrange(_EP_MASK + 1),
                      rng.randrange(_F24 + 1),
                      rng.randrange(_F24 + 1))
            assert unpack_ft(pack_ft(*fields)) == fields

    def test_field_isolation(self):
        """No field bleeds into a neighbour at its extremes."""
        assert unpack_ft(pack_ft(0, _F24, 0)) == (0, _F24, 0)
        assert unpack_ft(pack_ft(0, 0, _F24)) == (0, 0, _F24)
        assert unpack_ft(pack_ft(_EP_MASK, 0, 0)) == (_EP_MASK, 0, 0)

    def test_out_of_range_rejected(self):
        from repro.errors import LockError
        with pytest.raises(LockError):
            pack(-1, 0)
        with pytest.raises(LockError):
            pack_ft(0, _F24 + 1, 0)


class WordMachine:
    """Reference model of one FT lock word under CAS/FAA/reclaim,
    emitting the same events the real protocol emits."""

    def __init__(self, tracer, tokens, mgr="prop-mgr", lock=0):
        self.tr = tracer
        self.mgr = mgr
        self.lock = lock
        self.tokens = list(tokens)
        self.epoch = 0
        self.tail = 0
        self.count = 0
        for tk in self.tokens:
            tracer.emit("lock.request", node=0, mgr=mgr, lock=lock,
                        token=tk, mode="EXCLUSIVE")

    @property
    def word(self) -> int:
        return pack_ft(self.epoch, self.tail, self.count)

    def observe(self) -> None:
        self.tr.emit("lock.word", node=0, mgr=self.mgr, lock=self.lock,
                     word=self.word, ft=True)

    def cas_acquire(self, token: int) -> None:
        if self.tail == 0:
            self.tail = token
        self.observe()

    def faa_shared(self) -> None:
        if self.count < len(self.tokens):
            self.count += 1
        self.observe()

    def release(self) -> None:
        if self.count:
            self.count -= 1
        else:
            self.tail = 0
        self.observe()

    def reclaim(self) -> None:
        old = self.epoch
        self.epoch = (self.epoch + 1) & _EP_MASK
        self.tail = 0
        self.count = 0
        self.tr.emit("lock.reclaim", node=0, mgr=self.mgr,
                     lock=self.lock, old_ep=old, new_ep=self.epoch)
        self.observe()


def run_machine(seed: int, steps: int = 200):
    tr = Tracer(Environment())
    san = LockWordSanitizer(strict=True).attach(tr)
    rng = random.Random(seed)
    m = WordMachine(tr, tokens=[rng.randrange(1, _F24)
                                for _ in range(6)])
    for _ in range(steps):
        op = rng.random()
        if op < 0.35:
            m.cas_acquire(rng.choice(m.tokens))
        elif op < 0.65:
            m.faa_shared()
        elif op < 0.9:
            m.release()
        else:
            m.reclaim()
    return tr, san, m


class TestInterleavings:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_schedules_stay_silent(self, seed):
        tr, san, m = run_machine(seed)
        assert san.clean
        assert tr.emitted > 200

    @pytest.mark.parametrize("seed", range(5))
    def test_mutated_word_trips_sanitizer(self, seed):
        """Flip the word to a state the protocol cannot produce:
        an unannounced tail token, an overflowing shared count, or a
        future epoch.  Every mutation must be flagged."""
        rng = random.Random(spawn_child(seed, 1))
        mutations = [
            # tail token nobody announced
            lambda m: pack_ft(m.epoch, 0xBEEF42, 0),
            # count above the client population
            lambda m: pack_ft(m.epoch, 0, len(m.tokens) + 1),
            # epoch from the future half of the wrap window
            lambda m: pack_ft((m.epoch + rng.randrange(1, 0x7FFF))
                              & _EP_MASK, 0, 0),
        ]
        tr, san, m = run_machine(spawn_child(seed, 2))
        corrupt = rng.choice(mutations)(m)
        with pytest.raises(SanitizerError):
            tr.emit("lock.word", node=0, mgr=m.mgr, lock=m.lock,
                    word=corrupt, ft=True)

    def test_stale_observation_after_reclaim_is_legal(self):
        """Delayed responses may carry pre-reclaim epochs — never an
        error, per the emission-order contract."""
        tr = Tracer(Environment())
        san = LockWordSanitizer(strict=True).attach(tr)
        m = WordMachine(tr, tokens=[5])
        stale = m.word            # epoch 0
        m.reclaim()               # home moves to epoch 1
        tr.emit("lock.word", node=1, mgr=m.mgr, lock=m.lock,
                word=stale, ft=True)
        assert san.clean


class TestEpochFencingLive:
    """Epoch fencing on the real FT manager: chaos-free acquire/release
    traffic with a forced reclaim keeps the sanitizer silent and the
    epoch advances exactly once per reclaim."""

    def test_reclaim_under_live_traffic(self):
        from repro.net import Cluster
        from repro.faults import FaultPlan
        from repro.dlm import LockMode, NCoSEDManager

        # crash the holder so its lease expires and the reaper reclaims
        plan = FaultPlan().crash(1, at=1_000.0)
        cluster = Cluster(n_nodes=4, seed=3)
        obs = cluster.observe(strict=True)
        cluster.install_faults(plan)
        manager = NCoSEDManager(cluster, n_locks=1, lease_us=300.0)
        env = cluster.env
        victim = manager.client(cluster.nodes[1])
        other = manager.client(cluster.nodes[2])

        def hold_forever(env):
            yield victim.acquire(0, LockMode.EXCLUSIVE)
            yield env.timeout(1e9)

        def later(env):
            yield env.timeout(2_500.0)
            yield other.acquire(0, LockMode.EXCLUSIVE)
            yield other.release(0)
            return env.now

        env.process(hold_forever(env), name="victim")
        p = env.process(later(env), name="other")
        env.run_until_event(p, limit=1e9)
        assert obs.clean
        reclaims = obs.trace.select("lock.reclaim")
        assert len(reclaims) >= 1
        eps = [r.fields["new_ep"] for r in reclaims]
        assert eps == list(range(1, len(eps) + 1))
