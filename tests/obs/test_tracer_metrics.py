"""Unit tests: tracer ring/subscriptions and the metrics registry."""

import math
import random

import pytest

from repro.sim import Environment
from repro.sim.trace import Tally, percentile, rank_of
from repro.obs import LatencyHistogram, MetricsRegistry, Tracer
from repro.obs.events import TAXONOMY
from repro.obs.metrics import Counter, Gauge


class TestTracer:
    def test_emit_records_time_node_fields(self):
        env = Environment()
        tr = Tracer(env)
        env.timeout(12.5)
        env.run()
        ev = tr.emit("verb.issue", node=3, op="read", dst=1, nbytes=64)
        assert ev.t == 12.5
        assert ev.node == 3
        assert ev.fields == {"op": "read", "dst": 1, "nbytes": 64}
        assert len(tr) == 1 and tr.emitted == 1

    def test_ring_drops_oldest_but_counts_all(self):
        tr = Tracer(Environment(), capacity=4)
        for i in range(10):
            tr.emit("msg.send", node=0, i=i)
        assert tr.emitted == 10
        assert len(tr) == 4
        assert [ev.fields["i"] for ev in tr.ring] == [6, 7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(Environment(), capacity=0)

    def test_prefix_subscription_and_unsubscribe(self):
        tr = Tracer(Environment())
        seen = []
        tr.subscribe(seen.append, prefix="lock.")
        tr.emit("lock.grant", node=0)
        tr.emit("msg.send", node=0)
        tr.emit("lock.word", node=1)
        assert [ev.etype for ev in seen] == ["lock.grant", "lock.word"]
        tr.unsubscribe(seen.append)
        tr.emit("lock.release", node=0)
        assert len(seen) == 2

    def test_empty_prefix_sees_everything(self):
        tr = Tracer(Environment())
        seen = []
        tr.subscribe(seen.append)
        for etype in ("verb.issue", "cache.miss", "fault.crash"):
            tr.emit(etype, node=0)
        assert len(seen) == 3

    def test_select_filters_by_prefix_and_node(self):
        tr = Tracer(Environment())
        tr.emit("cache.hit.local", node=1, doc=7)
        tr.emit("cache.hit.remote", node=2, doc=7)
        tr.emit("cache.miss", node=1, doc=8)
        assert len(tr.select("cache.hit.")) == 2
        assert len(tr.select("cache.", node=1)) == 2
        assert tr.select("cache.miss")[0].fields["doc"] == 8

    def test_counts_sorted_by_type(self):
        tr = Tracer(Environment())
        tr.emit("msg.send", node=0)
        tr.emit("lock.grant", node=0)
        tr.emit("msg.send", node=0)
        assert tr.counts() == {"lock.grant": 1, "msg.send": 2}
        assert list(tr.counts()) == ["lock.grant", "msg.send"]


class TestTaxonomy:
    def test_every_type_documents_its_fields(self):
        for etype, (fields, desc) in TAXONOMY.items():
            assert isinstance(fields, tuple)
            assert desc

    def test_prefixes_are_hierarchical(self):
        # every dotted type's first segment groups a subsystem
        roots = {e.split(".")[0] for e in TAXONOMY}
        assert roots == {"verb", "msg", "rpc", "lock", "flow", "cache",
                         "ddss", "reconfig", "fault", "detect", "ha",
                         "txn", "topo", "shard"}


class TestCounterGauge:
    def test_counter_monotone(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_tracks_extremes(self):
        g = Gauge("queue")
        g.set(3.0)
        g.add(-5.0)
        g.set(10.0)
        assert g.value == 10.0
        assert g.min == -2.0 and g.max == 10.0

    def test_gauge_rejects_nan(self):
        with pytest.raises(ValueError):
            Gauge("g").set(float("nan"))

    def test_unset_gauge_exports_none_extremes(self):
        assert Gauge("g").to_dict() == {"value": 0.0, "min": None,
                                        "max": None}


class TestLatencyHistogram:
    def test_rejects_negative_and_nan(self):
        h = LatencyHistogram("h")
        with pytest.raises(ValueError):
            h.observe(-1.0)
        with pytest.raises(ValueError):
            h.observe(float("nan"))

    def test_zero_gets_its_own_bucket(self):
        h = LatencyHistogram("h")
        for _ in range(3):
            h.observe(0.0)
        h.observe(5.0)
        assert h.zeros == 3 and h.count == 4
        assert h.percentile(50) == 0.0

    def test_percentile_is_bucket_upper_bound(self):
        h = LatencyHistogram("h")
        h.observe(3.0)  # bucket (2, 4]
        assert h.percentile(50) == 4.0
        assert h.to_dict()["max_us"] == 3.0

    def test_same_rank_as_exact_percentile(self):
        """The histogram picks the same-ranked observation as the exact
        sorted-sample percentile; it only rounds it up to its bucket."""
        rng = random.Random(42)
        samples = [rng.uniform(0.1, 50_000.0) for _ in range(500)]
        h = LatencyHistogram("h")
        for s in samples:
            h.observe(s)
        for q in (0, 10, 50, 90, 95, 99, 100):
            exact = percentile(samples, q)
            assert h.percentile(q) == float(2.0 ** math.frexp(exact)[1])
            assert exact <= h.percentile(q) < 2 * exact

    def test_merge_matches_single_stream(self):
        a, b, both = (LatencyHistogram(n) for n in "ab2")
        for i, v in enumerate([1.0, 3.0, 10.0, 200.0, 0.0, 7.5]):
            (a if i % 2 else b).observe(v)
            both.observe(v)
        a.merge(b)
        assert a.count == both.count
        da, db = a.to_dict(), both.to_dict()
        assert da["mean_us"] == pytest.approx(db["mean_us"])
        for k in ("count", "min_us", "max_us", "p50_us", "p95_us",
                  "p99_us"):
            assert da[k] == db[k]

    def test_empty_export(self):
        d = LatencyHistogram("h").to_dict()
        assert d["count"] == 0
        assert d["p99_us"] is None and d["mean_us"] is None

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            LatencyHistogram("h").percentile(50)


class TestRankOf:
    def test_nearest_rank_rule(self):
        assert rank_of(0, 10) == 0
        assert rank_of(50, 10) == 4
        assert rank_of(100, 10) == 9
        assert rank_of(99, 1000) == 989

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            rank_of(101, 5)
        with pytest.raises(ValueError):
            rank_of(-1, 5)
        with pytest.raises(ValueError):
            rank_of(50, 0)


class TestTallyMerge:
    def test_parallel_variance_matches_single_stream(self):
        rng = random.Random(7)
        xs = [rng.gauss(100.0, 25.0) for _ in range(400)]
        whole, left, right = Tally(), Tally(), Tally()
        for i, x in enumerate(xs):
            whole.add(x)
            (left if i < 150 else right).add(x)
        left.merge(right)
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean)
        assert left.variance == pytest.approx(whole.variance)
        assert left.min == whole.min and left.max == whole.max

    def test_merge_empty_sides(self):
        t = Tally()
        t.add(2.0)
        t.merge(Tally())  # no-op
        assert t.count == 1 and t.mean == 2.0
        e = Tally()
        e.merge(t)
        assert e.count == 1 and e.mean == 2.0

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Tally().add(float("nan"))
        with pytest.raises(ValueError):
            percentile([1.0, float("nan")], 50)


class TestMetricsRegistry:
    def test_scoped_and_unscoped_coexist(self):
        reg = MetricsRegistry(Environment())
        reg.counter("rpc.calls").inc(2)
        reg.counter("rpc.calls", node=3).inc()
        assert reg.counters["rpc.calls"].value == 2
        assert reg.counters["rpc.calls@n3"].value == 1

    def test_create_on_first_use_returns_same_object(self):
        reg = MetricsRegistry(Environment())
        assert reg.histogram("x") is reg.histogram("x")
        assert reg.gauge("g", node=1) is reg.gauge("g", node=1)
        assert reg.gauge("g") is not reg.gauge("g", node=1)

    def test_export_is_sorted_and_json_plain(self):
        reg = MetricsRegistry(Environment())
        reg.counter("z").inc()
        reg.counter("a").inc()
        reg.histogram("h").observe(3.0)
        d = reg.to_dict()
        assert list(d["counters"]) == ["a", "z"]
        assert d["histograms"]["h"]["count"] == 1
