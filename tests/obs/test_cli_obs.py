"""The ``repro obs`` CLI subcommand: list, run, JSON export, errors."""

import json

from repro.cli import main
from repro.obs.scenarios import SCENARIOS


class TestObsCli:
    def test_list_scenarios(self, capsys):
        assert main(["obs", "list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == sorted(SCENARIOS)

    def test_run_prints_summary(self, capsys):
        assert main(["obs", "run", "locks"]) == 0
        out = capsys.readouterr().out
        assert "[locks] sim time:" in out
        assert "lock.grant" in out
        assert "violation(s)" in out

    def test_run_writes_json(self, tmp_path, capsys):
        path = tmp_path / "export.json"
        assert main(["obs", "run", "flow", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["metrics"]["counters"]["fabric.transfers"] > 0
        assert "flow.credit.take" in data["events"]["by_type"]

    def test_seed_changes_export(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["obs", "run", "locks", "--json", str(a)]) == 0
        assert main(["obs", "run", "locks", "--seed", "9",
                     "--json", str(b)]) == 0
        assert a.read_text() != b.read_text()

    def test_no_sanitize_runs_bare(self, capsys):
        assert main(["obs", "run", "ddss", "--no-sanitize"]) == 0
        out = capsys.readouterr().out
        assert "sanitizers:" not in out

    def test_unknown_scenario_fails(self, capsys):
        assert main(["obs", "run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_without_scenario_fails(self, capsys):
        assert main(["obs", "run"]) == 2
        assert "requires a scenario" in capsys.readouterr().err
