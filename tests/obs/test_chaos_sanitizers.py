"""Chaos schedules re-run with sanitizers attached (strict mode).

Mirrors the ``tests/faults`` schedules: crashes, restarts and message
loss against the fault-tolerant lock manager and reliable RPC.  The bar:
the protocols survive the chaos *and* every online invariant holds — a
strict sanitizer raises at the first violating event, so a pass means
zero violations across the whole run.
"""

import pytest

from repro.errors import LockError
from repro.net import Cluster
from repro.faults import FaultPlan
from repro.dlm import LockMode, NCoSEDManager

LEASE_US = 400.0


def chaos_actor(env, manager, cluster, node_i, lock_i, shared, delay,
                hold, outcomes):
    client = manager.client(cluster.nodes[node_i])
    mode = LockMode.SHARED if shared else LockMode.EXCLUSIVE
    yield env.timeout(delay)
    try:
        yield client.acquire(lock_i, mode)
    except LockError:
        outcomes.append(("gave-up", node_i, lock_i))
        return
    yield env.timeout(hold)
    try:
        yield client.release(lock_i)
    except LockError:
        pass
    outcomes.append(("done", node_i, lock_i))


class TestNcosedChaosSanitized:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_crash_schedule_keeps_invariants(self, seed):
        """Three crashes (a lock home among them) + 1% message drop:
        every sanitizer stays silent for the entire run."""
        plan = (FaultPlan()
                .crash(2, at=3_000.0, restart_at=9_000.0)
                .crash(5, at=5_000.0, restart_at=12_000.0)
                .crash(6, at=7_000.0)          # stays down
                .drop_messages(0.01))
        cluster = Cluster(n_nodes=8, seed=seed)
        obs = cluster.observe(strict=True)
        cluster.install_faults(plan)
        manager = NCoSEDManager(cluster, n_locks=4, lease_us=LEASE_US)
        env = cluster.env
        outcomes = []
        rng = cluster.rng.get("chaos-test")
        procs = []
        for i in range(20):
            procs.append(env.process(
                chaos_actor(env, manager, cluster,
                            i % 8, i % 4, rng.random() < 0.5,
                            rng.uniform(0.0, 8_000.0),
                            rng.uniform(100.0, 2_000.0), outcomes),
                name=f"chaos-{i}"))
        env.run(until=60_000.0)
        assert all(not p.is_alive for p in procs), "hung actor"
        assert obs.clean
        assert obs.trace.emitted > 0

    def test_holder_crash_reclaim_is_clean(self):
        """A crashed exclusive holder's lock is reclaimed; the epoch
        advance and the forced revocation satisfy the sanitizer."""
        plan = FaultPlan().crash(1, at=2_000.0)
        cluster = Cluster(n_nodes=4, seed=7)
        obs = cluster.observe(strict=True)
        cluster.install_faults(plan)
        manager = NCoSEDManager(cluster, n_locks=2, lease_us=LEASE_US)
        env = cluster.env
        holder = manager.client(cluster.nodes[1])
        waiter = manager.client(cluster.nodes[2])

        def hold(env):
            yield holder.acquire(0, LockMode.EXCLUSIVE)
            yield env.timeout(1e9)  # crashed before releasing

        def wait(env):
            yield env.timeout(3_000.0)
            yield waiter.acquire(0, LockMode.EXCLUSIVE)
            yield waiter.release(0)
            return env.now

        env.process(hold(env), name="holder")
        p = env.process(wait(env), name="waiter")
        env.run_until_event(p, limit=1e9)
        assert obs.clean
        assert len(obs.trace.select("lock.reclaim")) >= 1
        assert len(obs.trace.select("lock.revoke")) >= 1


class TestRpcChaosSanitized:
    def test_heavy_drop_at_most_once_holds(self):
        """40% loss each way with retries: the dedup cache absorbs the
        re-sends, so rpc.execute never repeats a request id."""
        from repro.transport import RpcClient, RpcServer, TcpEndpoint

        cluster = Cluster(n_nodes=2, seed=0)
        obs = cluster.observe(strict=True)
        cluster.install_faults(
            FaultPlan().drop_messages(0.4, start=50.0))
        served = []

        def handler(req):
            served.append(req)
            return {"echo": req}, 32, 1.0

        server = RpcServer(TcpEndpoint(cluster.nodes[0]), port=9,
                           handler=handler)
        server.start()
        client = RpcClient(TcpEndpoint(cluster.nodes[1]))
        replies = []

        def app(env):
            chan = yield client.open(0, port=9)
            for i in range(30):
                r = yield chan.call(i, size=64, timeout_us=2_000.0,
                                    retries=8)
                replies.append(r)
            return chan

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p, limit=1e9)
        assert replies == [{"echo": i} for i in range(30)]
        assert obs.clean
        # the chaos actually exercised the retry machinery
        assert len(obs.trace.select("rpc.retry")) > 0
        assert (len(obs.trace.select("rpc.dup_request"))
                == server.dup_requests)


class TestScenarioChaos:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_packaged_chaos_scenario_is_clean(self, seed):
        from repro.obs.scenarios import run_scenario

        obs = run_scenario("chaos", seed=seed, strict=True)
        assert obs.clean
        assert obs.trace.select("fault.crash")
