"""Zero cost when off: a run without ``install()`` must execute the
byte-identical event sequence — same simulated timestamps, same
protocol outcomes, same per-subsystem counters — as it always did.

Each workload here runs twice from the same seed, once with
observability installed and once without, and the full fingerprint of
the *simulation* (not the obs data) must match exactly.  Emission sites
cost one attribute load when off, which cannot perturb simulated time.
"""

import pytest

from repro.sim import Environment
from repro.net import Cluster
from repro.faults import FaultPlan


def lock_workload(observe: bool):
    from repro.dlm import LockMode, NCoSEDManager

    cluster = Cluster(n_nodes=6, seed=11)
    if observe:
        cluster.observe()
    manager = NCoSEDManager(cluster, n_locks=4)
    env = cluster.env
    clients = [manager.client(n) for n in cluster.nodes]

    def actor(env, c, lock_i, delay, hold, shared):
        mode = LockMode.SHARED if shared else LockMode.EXCLUSIVE
        yield env.timeout(delay)
        yield c.acquire(lock_i, mode)
        yield env.timeout(hold)
        yield c.release(lock_i)

    for i, c in enumerate(clients * 3):
        env.process(actor(env, c, i % 4, 13.0 * i, 29.0, i % 2 == 0),
                    name=f"actor-{i}")
    env.run(until=1e8)
    return {
        "now": env.now,
        "acquires": [c.acquires for c in clients],
        "releases": [c.releases for c in clients],
        "transfers": cluster.fabric.transfers,
        "bytes": cluster.fabric.bytes_moved,
    }


def ddss_workload(observe: bool):
    from repro.ddss import DDSS, Coherence

    cluster = Cluster(n_nodes=4, seed=5)
    if observe:
        cluster.observe()
    ddss = DDSS(cluster, segment_bytes=64 * 1024)
    env = cluster.env
    clients = [ddss.client(n) for n in cluster.nodes[1:]]

    def worker(env, client, model):
        key = yield client.allocate(128, coherence=model, placement=0)
        for i in range(5):
            yield client.put(key, bytes([i]) * 64)
            yield client.get(key)

    for i, model in enumerate(Coherence):
        env.process(worker(env, clients[i % 3], model),
                    name=f"w-{model.value}")
    env.run(until=1e8)
    return {
        "now": env.now,
        "gets": [c.gets for c in clients],
        "puts": [c.puts for c in clients],
        "cache_hits": [c.cache_hits for c in clients],
        "transfers": cluster.fabric.transfers,
        "bytes": cluster.fabric.bytes_moved,
    }


def chaos_workload(observe: bool):
    from repro.dlm import LockMode, NCoSEDManager
    from repro.errors import LockError

    plan = (FaultPlan()
            .crash(2, at=2_000.0, restart_at=6_000.0)
            .drop_messages(0.02))
    cluster = Cluster(n_nodes=6, seed=23)
    if observe:
        cluster.observe(strict=False)
    cluster.install_faults(plan)
    manager = NCoSEDManager(cluster, n_locks=3, lease_us=400.0)
    env = cluster.env
    outcomes = []

    def actor(env, c, lock_i, delay, hold):
        yield env.timeout(delay)
        try:
            yield c.acquire(lock_i, LockMode.EXCLUSIVE)
        except LockError:
            outcomes.append("gave-up")
            return
        yield env.timeout(hold)
        try:
            yield c.release(lock_i)
        except LockError:
            pass
        outcomes.append("done")

    for i in range(12):
        c = manager.client(cluster.nodes[i % 6])
        env.process(actor(env, c, i % 3, 400.0 * i, 700.0),
                    name=f"chaos-{i}")
    env.run(until=30_000.0)
    return {
        "now": env.now,
        "outcomes": sorted(outcomes),
        "transfers": cluster.fabric.transfers,
        "bytes": cluster.fabric.bytes_moved,
        "epochs": [manager.lock_epoch(i) for i in range(3)],
    }


class TestZeroOverheadWhenOff:
    def test_obs_defaults_to_none(self):
        assert Environment().obs is None

    def test_lock_workload_identical(self):
        assert lock_workload(False) == lock_workload(True)

    def test_ddss_workload_identical(self):
        assert ddss_workload(False) == ddss_workload(True)

    def test_chaos_workload_identical(self):
        """Fault schedules draw from seeded rng streams; instrumentation
        must not shift a single draw."""
        assert chaos_workload(False) == chaos_workload(True)

    def test_off_run_truly_emits_nothing(self):
        cluster = Cluster(n_nodes=2, seed=1)
        obs = cluster.observe()
        obs.uninstall()        # sites guard on env.obs: nothing fires
        n0 = cluster.nodes[0]
        seg = cluster.nodes[1].memory.register(64, name="seg")

        def app(env):
            yield n0.nic.rdma_write(1, seg.addr, seg.rkey, b"x" * 32)

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p, limit=1e9)
        assert obs.trace.emitted == 0
