"""Each sanitizer: one silent-on-clean and one fires-on-violation test.

The unit tests drive sanitizers with synthetic event streams through a
bare :class:`Tracer` (full control over the exact violating event); the
integration tests at the bottom corrupt real protocol state and assert
the attached sanitizer catches it.
"""

import pytest

from repro.errors import SanitizerError
from repro.sim import Environment
from repro.obs import (
    CacheAccountingSanitizer,
    FlowControlSanitizer,
    LockWordSanitizer,
    Observability,
    RpcAtMostOnceSanitizer,
    SingleOwnerSanitizer,
    Tracer,
)
from repro.dlm.ncosed import pack, pack_ft


def make(san_cls, strict=True):
    tr = Tracer(Environment())
    san = san_cls(strict=strict).attach(tr)
    return tr, san


class TestFlowControlSanitizer:
    def test_silent_on_balanced_credits(self):
        tr, san = make(FlowControlSanitizer)
        for _ in range(4):
            tr.emit("flow.credit.take", node=0, sender=0, capacity=4)
        tr.emit("flow.credit.return", node=0, sender=0, n=4)
        tr.emit("flow.credit.take", node=0, sender=0, capacity=4)
        tr.emit("flow.ring.reserve", node=0, sender=0, nbytes=512,
                pool=1024)
        tr.emit("flow.ring.free", node=0, sender=0, nbytes=512)
        assert san.clean

    def test_fires_on_credit_overdraft(self):
        tr, san = make(FlowControlSanitizer)
        tr.emit("flow.credit.take", node=0, sender=0, capacity=1)
        with pytest.raises(SanitizerError, match="exceeds"):
            tr.emit("flow.credit.take", node=0, sender=0, capacity=1)

    def test_fires_on_minted_credits(self):
        tr, san = make(FlowControlSanitizer, strict=False)
        tr.emit("flow.credit.return", node=0, sender=1, n=1)
        assert not san.clean
        assert "< 0" in san.violations[0]["msg"]

    def test_fires_on_ring_overflow(self):
        tr, san = make(FlowControlSanitizer, strict=False)
        tr.emit("flow.ring.reserve", node=0, sender=0, nbytes=600,
                pool=1024)
        tr.emit("flow.ring.reserve", node=0, sender=0, nbytes=600,
                pool=1024)
        assert len(san.violations) == 1


class TestLockWordSanitizer:
    MGR = "ncosed-1"

    def announce(self, tr, *tokens):
        for tk in tokens:
            tr.emit("lock.request", node=0, mgr=self.MGR, lock=0,
                    token=tk, mode="EXCLUSIVE")

    def test_silent_on_clean_protocol(self):
        tr, san = make(LockWordSanitizer)
        self.announce(tr, 1, 2)
        tr.emit("lock.word", node=0, mgr=self.MGR, lock=0,
                word=pack(1, 0), ft=False)
        tr.emit("lock.grant", node=0, mgr=self.MGR, lock=0, token=1,
                mode="EXCLUSIVE")
        tr.emit("lock.release", node=0, mgr=self.MGR, lock=0, token=1)
        tr.emit("lock.grant", node=0, mgr=self.MGR, lock=0, token=2,
                mode="SHARED")
        assert san.clean

    def test_fires_on_unannounced_tail(self):
        tr, san = make(LockWordSanitizer)
        self.announce(tr, 1)
        with pytest.raises(SanitizerError, match="never announced"):
            tr.emit("lock.word", node=0, mgr=self.MGR, lock=0,
                    word=pack(99, 0), ft=False)

    def test_fires_on_count_above_population(self):
        tr, san = make(LockWordSanitizer, strict=False)
        self.announce(tr, 1, 2)
        tr.emit("lock.word", node=0, mgr=self.MGR, lock=0,
                word=pack(0, 3), ft=False)
        assert "exceeds client population" in san.violations[0]["msg"]

    def test_epoch_advances_by_one(self):
        tr, san = make(LockWordSanitizer)
        tr.emit("lock.reclaim", node=0, mgr=self.MGR, lock=0,
                old_ep=0, new_ep=1)
        tr.emit("lock.reclaim", node=0, mgr=self.MGR, lock=0,
                old_ep=1, new_ep=2)
        assert san.clean
        with pytest.raises(SanitizerError, match="epoch jump"):
            tr.emit("lock.reclaim", node=0, mgr=self.MGR, lock=0,
                    old_ep=2, new_ep=5)

    def test_epoch_wraps_mod_2_16(self):
        tr, san = make(LockWordSanitizer)
        tr.emit("lock.reclaim", node=0, mgr=self.MGR, lock=0,
                old_ep=0xFFFF, new_ep=0)
        assert san.clean

    def test_stale_epoch_tolerated_future_flagged(self):
        tr, san = make(LockWordSanitizer, strict=False)
        self.announce(tr, 1)
        tr.emit("lock.reclaim", node=0, mgr=self.MGR, lock=0,
                old_ep=0, new_ep=1)
        tr.emit("lock.reclaim", node=0, mgr=self.MGR, lock=0,
                old_ep=1, new_ep=2)
        # a delayed response may surface epoch 1 after the home reached 2
        tr.emit("lock.word", node=0, mgr=self.MGR, lock=0,
                word=pack_ft(1, 0, 1), ft=True)
        assert san.clean
        # ...but epoch 3 has not been opened by any reclaim
        tr.emit("lock.word", node=0, mgr=self.MGR, lock=0,
                word=pack_ft(3, 0, 1), ft=True)
        assert "future epoch" in san.violations[0]["msg"]

    def test_fires_on_double_exclusive_grant(self):
        tr, san = make(LockWordSanitizer, strict=False)
        self.announce(tr, 1, 2)
        tr.emit("lock.grant", node=0, mgr=self.MGR, lock=0, token=1,
                mode="EXCLUSIVE")
        tr.emit("lock.grant", node=0, mgr=self.MGR, lock=0, token=2,
                mode="EXCLUSIVE")
        assert "exclusive grant" in san.violations[0]["msg"]

    def test_fires_on_release_without_grant(self):
        tr, san = make(LockWordSanitizer, strict=False)
        tr.emit("lock.release", node=0, mgr=self.MGR, lock=0, token=9)
        assert "never had" in san.violations[0]["msg"]


class TestRpcAtMostOnceSanitizer:
    def test_silent_on_distinct_rids_and_servers(self):
        tr, san = make(RpcAtMostOnceSanitizer)
        tr.emit("rpc.execute", node=0, rid=1, server="0:9")
        tr.emit("rpc.execute", node=0, rid=2, server="0:9")
        tr.emit("rpc.execute", node=1, rid=1, server="1:9")
        tr.emit("rpc.dup_request", node=0, rid=1, server="0:9")  # replay ok
        assert san.clean

    def test_plain_calls_exempt(self):
        tr, san = make(RpcAtMostOnceSanitizer)
        tr.emit("rpc.execute", node=0, rid=None, server="0:9")
        tr.emit("rpc.execute", node=0, rid=None, server="0:9")
        assert san.clean

    def test_fires_on_reexecution(self):
        tr, san = make(RpcAtMostOnceSanitizer)
        tr.emit("rpc.execute", node=0, rid=7, server="0:9")
        with pytest.raises(SanitizerError, match="more than once"):
            tr.emit("rpc.execute", node=0, rid=7, server="0:9")


class TestSingleOwnerSanitizer:
    def test_silent_on_handoff(self):
        tr, san = make(SingleOwnerSanitizer)
        for token in (0x10, 0x20):
            tr.emit("ddss.lock.acquire", node=1, home=0, addr=64,
                    token=token)
            tr.emit("ddss.lock.release", node=1, home=0, addr=64,
                    token=token)
        assert san.clean

    def test_distinct_units_independent(self):
        tr, san = make(SingleOwnerSanitizer)
        tr.emit("ddss.lock.acquire", node=1, home=0, addr=64, token=1)
        tr.emit("ddss.lock.acquire", node=2, home=0, addr=128, token=2)
        assert san.clean

    def test_fires_on_second_owner(self):
        tr, san = make(SingleOwnerSanitizer)
        tr.emit("ddss.lock.acquire", node=1, home=0, addr=64, token=1)
        with pytest.raises(SanitizerError, match="already owned"):
            tr.emit("ddss.lock.acquire", node=2, home=0, addr=64, token=2)

    def test_fires_on_foreign_release(self):
        tr, san = make(SingleOwnerSanitizer, strict=False)
        tr.emit("ddss.lock.acquire", node=1, home=0, addr=64, token=1)
        tr.emit("ddss.lock.release", node=2, home=0, addr=64, token=2)
        assert "owned by" in san.violations[0]["msg"]


class TestCacheAccountingSanitizer:
    def test_silent_on_consistent_store(self):
        tr, san = make(CacheAccountingSanitizer)
        tr.emit("cache.admit", node=0, doc=1, size=100, used=100,
                capacity=256)
        tr.emit("cache.admit", node=0, doc=2, size=100, used=200,
                capacity=256)
        tr.emit("cache.evict", node=0, doc=1, size=100)
        tr.emit("cache.admit", node=0, doc=3, size=150, used=250,
                capacity=256)
        assert san.clean

    def test_fires_on_phantom_eviction(self):
        tr, san = make(CacheAccountingSanitizer)
        with pytest.raises(SanitizerError, match="never admitted"):
            tr.emit("cache.evict", node=0, doc=42, size=10)

    def test_fires_on_used_mismatch(self):
        tr, san = make(CacheAccountingSanitizer, strict=False)
        tr.emit("cache.admit", node=0, doc=1, size=100, used=150,
                capacity=256)
        assert "admitted documents total" in san.violations[0]["msg"]

    def test_fires_on_capacity_overflow(self):
        tr, san = make(CacheAccountingSanitizer, strict=False)
        tr.emit("cache.admit", node=0, doc=1, size=300, used=300,
                capacity=256)
        assert any("exceeds capacity" in v["msg"] for v in san.violations)


class TestObservabilityBundle:
    def test_install_uninstall(self):
        env = Environment()
        obs = Observability(env).install()
        assert env.obs is obs
        with pytest.raises(Exception):
            Observability(env).install()
        obs.uninstall()
        assert env.obs is None

    def test_violations_sorted_and_check_raises(self):
        env = Environment()
        obs = Observability(env, strict=False).install()
        obs.trace.emit("cache.evict", node=0, doc=1, size=8)
        obs.trace.emit("ddss.lock.release", node=0, home=0, addr=0,
                       token=5)
        assert not obs.clean
        vs = obs.violations()
        assert [v["sanitizer"] for v in vs] == ["cache-accounting",
                                               "single-owner"]
        with pytest.raises(SanitizerError, match="2 sanitizer"):
            obs.check()

    def test_no_sanitize_mode(self):
        env = Environment()
        obs = Observability(env, sanitize=False).install()
        obs.trace.emit("cache.evict", node=0, doc=1, size=8)
        assert obs.sanitizers == {} and obs.clean


class TestIntegrationCorruption:
    """Corrupt real protocol state; the attached sanitizer must notice."""

    def test_ddss_lock_word_smash_breaks_mutual_exclusion(self):
        """An errant RDMA write zeroes a held unit lock; the next CAS
        succeeds and two owners coexist — single-owner fires."""
        from repro.net import Cluster
        from repro.ddss import DDSS
        from repro.ddss.substrate import LOCK_OFF

        cluster = Cluster(n_nodes=4, seed=0)
        obs = cluster.observe(strict=False)
        ddss = DDSS(cluster, segment_bytes=64 * 1024)
        a = ddss.client(cluster.nodes[1])
        b = ddss.client(cluster.nodes[2])
        attacker = cluster.nodes[3]

        def script(env):
            key = yield a.allocate(64, placement=0)
            meta = yield from a._meta(key)
            yield a.acquire(key)
            # stray write wipes the lock word while A still owns it
            yield attacker.nic.rdma_write(
                meta.home, meta.addr + LOCK_OFF, meta.rkey,
                (0).to_bytes(8, "big"))
            yield b.acquire(key)

        p = cluster.env.process(script(cluster.env))
        cluster.env.run_until_event(p, limit=1e9)
        assert not obs.clean
        assert obs.violations()[0]["sanitizer"] == "single-owner"

    def test_ncosed_word_corruption_detected(self):
        """A far-future epoch scribbled into a home's lock word trips
        the lock-word sanitizer at the next client observation."""
        from repro.net import Cluster
        from repro.dlm import LockMode, NCoSEDManager

        cluster = Cluster(n_nodes=4, seed=0)
        obs = cluster.observe(strict=False)
        manager = NCoSEDManager(cluster, n_locks=2, lease_us=500.0)
        client = manager.client(cluster.nodes[1])

        def script(env):
            yield client.acquire(0, LockMode.EXCLUSIVE)
            yield client.release(0)
            # scribble a word from an epoch no reclaim ever opened
            # (within the future half of the wrap window)
            home = manager.home_node(0)
            manager._words[home.id].write_u64(0, pack_ft(1_000, 0, 0))
            yield client.acquire(0, LockMode.EXCLUSIVE)

        p = cluster.env.process(script(cluster.env))
        cluster.env.run_until_event(p, limit=1e9)
        assert any(v["sanitizer"] == "lockword"
                   and "future epoch" in v["msg"]
                   for v in obs.violations())
