"""Tests for the bench-table formatting helpers."""

import json

import pytest

from repro.bench import BenchTable, format_series, improvement_pct


class TestBenchTable:
    def test_render_contains_data(self):
        t = BenchTable("Throughput", ["scheme", "tps"], paper_ref="Fig 6a")
        t.add("AC", 1234.5)
        t.add("HYBCC", 2468)
        out = t.render()
        assert "Throughput" in out
        assert "Fig 6a" in out
        assert "1,234.5" in out
        assert "2,468" in out
        assert "HYBCC" in out

    def test_row_arity_checked(self):
        t = BenchTable("x", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_save_json_roundtrip(self, tmp_path):
        t = BenchTable("x", ["a"], paper_ref="Fig 1")
        t.add(42)
        path = tmp_path / "out" / "t.json"
        t.save_json(str(path))
        data = json.loads(path.read_text())
        assert data == {"title": "x", "paper_ref": "Fig 1",
                        "columns": ["a"], "rows": [[42]]}

    def test_empty_table_renders(self):
        t = BenchTable("empty", ["col"])
        assert "empty" in t.render()


def test_improvement_pct():
    assert improvement_pct(135.0, 100.0) == pytest.approx(35.0)
    assert improvement_pct(50.0, 100.0) == pytest.approx(-50.0)
    with pytest.raises(ValueError):
        improvement_pct(1.0, 0.0)


def test_format_series():
    assert format_series([1, 2], [3.0, 4.5]) == "1:3.0  2:4.5"
