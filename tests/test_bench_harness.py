"""Tests for the bench-table formatting helpers."""

import json
import os

import pytest

from repro.bench import (BenchTable, dump_tables, format_series,
                         improvement_pct, replay)
from repro.bench.harness import RENDERED


class TestBenchTable:
    def test_render_contains_data(self):
        t = BenchTable("Throughput", ["scheme", "tps"], paper_ref="Fig 6a")
        t.add("AC", 1234.5)
        t.add("HYBCC", 2468)
        out = t.render()
        assert "Throughput" in out
        assert "Fig 6a" in out
        assert "1,234.5" in out
        assert "2,468" in out
        assert "HYBCC" in out

    def test_row_arity_checked(self):
        t = BenchTable("x", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_save_json_roundtrip(self, tmp_path):
        t = BenchTable("x", ["a"], paper_ref="Fig 1")
        t.add(42)
        path = tmp_path / "out" / "t.json"
        t.save_json(str(path))
        data = json.loads(path.read_text())
        assert data == {"title": "x", "paper_ref": "Fig 1",
                        "columns": ["a"], "rows": [[42]]}

    def test_empty_table_renders(self):
        t = BenchTable("empty", ["col"])
        assert "empty" in t.render()

    def test_show_returns_serializable_dict(self, capsys):
        t = BenchTable("x", ["a"], paper_ref="Fig 1")
        t.add(42)
        shown = t.show()
        capsys.readouterr()
        assert shown == t.to_dict()
        json.dumps(shown)  # must survive a process boundary

    def test_from_dict_roundtrip(self):
        t = BenchTable("x", ["a", "b"], paper_ref="Fig 2")
        t.add(1, 2.5)
        clone = BenchTable.from_dict(t.to_dict())
        assert clone.render() == t.render()


class TestReplay:
    def test_replay_reregisters_tables(self, capsys):
        t = BenchTable("worker table", ["a"])
        t.add(7)
        before = len(RENDERED)
        rebuilt = replay([t.to_dict()])
        capsys.readouterr()
        assert len(RENDERED) == before + 1
        assert RENDERED[-1] == t.render()
        assert rebuilt[0].render() == t.render()


class TestDumpTables:
    def test_same_title_no_longer_overwrites(self, tmp_path):
        a = BenchTable("Fig 5: cascade", ["n"])
        a.add(1)
        b = BenchTable("Fig 5: cascade", ["n"])
        b.add(2)
        paths = dump_tables([a, b], str(tmp_path))
        assert len(paths) == len(set(paths)) == 2
        assert all(os.path.exists(p) for p in paths)
        dumped = sorted(json.loads(open(p).read())["rows"][0][0]
                        for p in paths)
        assert dumped == [1, 2]

    def test_titles_slugified(self, tmp_path):
        t = BenchTable("Fig 3a: DDSS put() latency (us)", ["x"])
        (path,) = dump_tables([t], str(tmp_path))
        name = os.path.basename(path)
        assert name == "fig_3a_ddss_put_latency_us.json"


def test_improvement_pct():
    assert improvement_pct(135.0, 100.0) == pytest.approx(35.0)
    assert improvement_pct(50.0, 100.0) == pytest.approx(-50.0)
    with pytest.raises(ValueError):
        improvement_pct(1.0, 0.0)


def test_format_series():
    assert format_series([1, 2], [3.0, 4.5]) == "1:3.0  2:4.5"
