"""Tests for the multi-tier data-center model."""

import pytest

from repro.errors import ConfigError
from repro.net import Cluster
from repro.cache import ApacheCache
from repro.datacenter import (
    BackendTier,
    ClosedLoopClients,
    DataCenter,
    DataCenterMetrics,
    ProxyServer,
)
from repro.workloads import FileSet, ZipfGenerator


class TestBackendTier:
    def test_fetch_returns_correct_token(self):
        cluster = Cluster(n_nodes=3, seed=0)
        fs = FileSet(10, 4096, seed=0)
        backend = BackendTier(cluster.nodes[1:], fs)

        def app(env):
            token = yield backend.fetch(cluster.nodes[0], 7)
            return token

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p)
        assert fs.verify(7, p.value)
        assert backend.requests == 1

    def test_cost_scales_with_document_size(self):
        cluster = Cluster(n_nodes=2, seed=0)
        fs = FileSet(2, [1024, 262_144], seed=0)
        backend = BackendTier([cluster.nodes[1]], fs)

        def timed(env, doc):
            t0 = env.now
            yield backend.fetch(cluster.nodes[0], doc)
            return env.now - t0

        p = cluster.env.process(timed(cluster.env, 0))
        cluster.env.run_until_event(p)
        t_small = p.value
        p = cluster.env.process(timed(cluster.env, 1))
        cluster.env.run_until_event(p)
        assert p.value > 3 * t_small

    def test_round_robin_across_app_nodes(self):
        cluster = Cluster(n_nodes=4, seed=0)
        fs = FileSet(10, 1024, seed=0)
        backend = BackendTier(cluster.nodes[1:], fs)

        def app(env):
            for doc in range(6):
                yield backend.fetch(cluster.nodes[0], doc)

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p)
        # all three app nodes did some generation work
        assert all(n.cpu.utilization() > 0 for n in cluster.nodes[1:])

    def test_empty_tier_rejected(self):
        fs = FileSet(1, 10)
        with pytest.raises(ConfigError):
            BackendTier([], fs)


class TestProxyServer:
    def build(self, n_workers=4):
        cluster = Cluster(names=["client", "proxy", "app"], seed=0)
        fs = FileSet(20, 2048, seed=0)
        scheme = ApacheCache([cluster.nodes[1]], fs, 16 * 1024)
        backend = BackendTier([cluster.nodes[2]], fs)
        metrics = DataCenterMetrics(cluster.env)
        server = ProxyServer(cluster.nodes[1], scheme, backend, metrics,
                             n_workers=n_workers)
        return cluster, server, metrics, scheme

    def test_serves_and_records(self):
        cluster, server, metrics, scheme = self.build()

        def app(env):
            yield server.handle(3, client_node_id=0)
            yield server.handle(3, client_node_id=0)

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p)
        assert server.served == 2
        assert metrics.completed == 2
        assert scheme.local_hits == 1  # second request hits

    def test_worker_pool_bounds_concurrency(self):
        cluster, server, metrics, _ = self.build(n_workers=2)

        def app(env):
            events = [server.handle(d, client_node_id=0)
                      for d in range(8)]
            yield env.all_of(events)

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p)
        assert server.queue_peak >= 1  # some requests waited for a worker
        assert server.served == 8

    def test_bad_worker_count(self):
        cluster = Cluster(names=["c", "p", "a"], seed=0)
        fs = FileSet(5, 100)
        scheme = ApacheCache([cluster.nodes[1]], fs, 1024)
        backend = BackendTier([cluster.nodes[2]], fs)
        with pytest.raises(ConfigError):
            ProxyServer(cluster.nodes[1], scheme, backend,
                        DataCenterMetrics(cluster.env), n_workers=0)


class TestMetrics:
    def test_tps_window(self):
        cluster = Cluster(n_nodes=1, seed=0)
        m = DataCenterMetrics(cluster.env)

        def app(env):
            for _ in range(10):
                yield env.timeout(1000.0)
                m.record(env.now - 500.0)

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p)
        # 10 transactions in 10_000us -> 1000 tps
        assert m.tps() == pytest.approx(1000.0, rel=0.01)
        assert m.mean_latency_us() == pytest.approx(500.0)

    def test_window_reset(self):
        cluster = Cluster(n_nodes=1, seed=0)
        m = DataCenterMetrics(cluster.env)
        m.record(0.0)
        m.start_window()
        assert m.completed == 0


class TestDataCenterBuilder:
    def test_bad_scheme_rejected(self):
        with pytest.raises(ConfigError):
            DataCenter(scheme="NOPE")

    def test_end_to_end_small_run(self):
        dc = DataCenter(n_proxies=2, n_app=1, scheme="BCC",
                        n_docs=60, doc_bytes=2048,
                        cache_bytes=32 * 1024, n_sessions=6, seed=4)
        tps = dc.run_tps(warmup_us=20_000, measure_us=50_000)
        assert tps > 0
        assert dc.metrics.completed > 10
        # the cooperative scheme actually cooperated
        assert dc.scheme.local_hits + dc.scheme.remote_hits > 0

    def test_all_schemes_run_end_to_end(self):
        for scheme in ("AC", "BCC", "CCWR", "MTACC", "HYBCC"):
            dc = DataCenter(n_proxies=2, n_app=1, scheme=scheme,
                            n_docs=40, doc_bytes=2048,
                            cache_bytes=32 * 1024, n_sessions=4, seed=5)
            assert dc.run_tps(warmup_us=10_000, measure_us=30_000) > 0

    def test_deterministic_given_seed(self):
        def one():
            dc = DataCenter(n_proxies=2, n_app=1, scheme="AC",
                            n_docs=40, doc_bytes=2048,
                            cache_bytes=32 * 1024, n_sessions=4, seed=6)
            return dc.run_tps(warmup_us=10_000, measure_us=30_000)

        assert one() == one()


class TestClosedLoopClients:
    def test_custom_picker(self):
        cluster = Cluster(names=["client", "p0", "p1", "app"], seed=0)
        fs = FileSet(10, 1024, seed=0)
        scheme = ApacheCache(cluster.nodes[1:3], fs, 8 * 1024)
        backend = BackendTier([cluster.nodes[3]], fs)
        metrics = DataCenterMetrics(cluster.env)
        servers = [ProxyServer(n, scheme, backend, metrics)
                   for n in cluster.nodes[1:3]]
        zipf = ZipfGenerator(10, 0.5, cluster.rng.get("z"))
        clients = ClosedLoopClients(cluster.nodes[0], servers, zipf,
                                    n_sessions=2,
                                    picker=lambda doc: 1)  # always proxy 1
        clients.start()
        cluster.env.run(until=50_000)
        assert servers[1].served > 0
        assert servers[0].served == 0

    def test_double_start_rejected(self):
        cluster = Cluster(names=["client", "p0", "app"], seed=0)
        fs = FileSet(10, 1024, seed=0)
        scheme = ApacheCache([cluster.nodes[1]], fs, 8 * 1024)
        backend = BackendTier([cluster.nodes[2]], fs)
        servers = [ProxyServer(cluster.nodes[1], scheme, backend,
                               DataCenterMetrics(cluster.env))]
        zipf = ZipfGenerator(10, 0.5, cluster.rng.get("z"))
        clients = ClosedLoopClients(cluster.nodes[0], servers, zipf,
                                    n_sessions=1)
        clients.start()
        with pytest.raises(ConfigError):
            clients.start()
