"""Tests for the STORM query engine (both coordination substrates)."""

import pytest

from repro.errors import ConfigError
from repro.net import Cluster
from repro.apps.storm import StormEngine


def build(n_records=2000, use_ddss=False, n_nodes=4, seed=3):
    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    engine = StormEngine(cluster, n_records=n_records,
                         use_ddss=use_ddss, seed=seed)
    return cluster, engine


def run_query(cluster, engine, lo, hi):
    ev = engine.run_query(lo, hi)
    cluster.env.run_until_event(ev, limit=1e9)
    return ev.value


@pytest.mark.parametrize("use_ddss", [False, True])
class TestCorrectness:
    def test_query_matches_direct_evaluation(self, use_ddss):
        cluster, engine = build(use_ddss=use_ddss)
        got = run_query(cluster, engine, 2000, 7000)
        assert got == engine.expected(2000, 7000)

    def test_empty_range(self, use_ddss):
        cluster, engine = build(use_ddss=use_ddss)
        assert run_query(cluster, engine, 5000, 5000) == (0, 0)

    def test_full_range_counts_everything(self, use_ddss):
        cluster, engine = build(n_records=1234, use_ddss=use_ddss)
        count, _total = run_query(cluster, engine, 0, 10_000)
        assert count == 1234

    def test_sequential_queries(self, use_ddss):
        cluster, engine = build(use_ddss=use_ddss)
        for lo, hi in ((0, 100), (100, 5000), (9000, 10_000)):
            assert run_query(cluster, engine, lo, hi) \
                == engine.expected(lo, hi)
        assert engine.queries_run == 3


class TestPartitioning:
    def test_records_partitioned_across_storage(self):
        cluster, engine = build(n_records=1000, n_nodes=5)
        parts = [len(p) for p in engine.partitions.values()]
        assert sum(parts) == 1000
        assert len(parts) == 4
        assert max(parts) - min(parts) <= 1

    def test_bad_config(self):
        cluster = Cluster(n_nodes=1, seed=0)
        with pytest.raises(ConfigError):
            StormEngine(cluster, n_records=10)
        cluster = Cluster(n_nodes=2, seed=0)
        with pytest.raises(ConfigError):
            StormEngine(cluster, n_records=0)


class TestPerformanceShape:
    def mean_query_time(self, use_ddss, n_records, n_queries=6):
        cluster, engine = build(n_records=n_records, use_ddss=use_ddss)

        def workload(env):
            t0 = env.now
            for q in range(n_queries):
                yield engine.run_query(0, 3000 + 500 * q)
            return (env.now - t0) / n_queries

        p = cluster.env.process(workload(cluster.env))
        cluster.env.run_until_event(p, limit=1e9)
        return p.value

    def test_ddss_beats_sockets_at_moderate_scale(self):
        """Fig 3b: DDSS coordination wins (~19% at 10K records)."""
        trad = self.mean_query_time(False, 10_000)
        ddss = self.mean_query_time(True, 10_000)
        assert ddss < trad
        assert (trad / ddss - 1) > 0.05

    def test_advantage_shrinks_with_scan_size(self):
        gain_small = (self.mean_query_time(False, 2_000)
                      / self.mean_query_time(True, 2_000))
        gain_large = (self.mean_query_time(False, 200_000)
                      / self.mean_query_time(True, 200_000))
        assert gain_small > gain_large
