"""End-to-end tests for the auction application (DDSS + DLM + cluster)."""

import pytest

from repro.errors import ConfigError
from repro.net import Cluster
from repro.apps.auction import AuctionService


def build(n_items=4, n_nodes=5, seed=6):
    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    service = AuctionService(cluster, n_items=n_items)
    return cluster, service


def run(cluster, gen, limit=1e9):
    p = cluster.env.process(gen)
    cluster.env.run_until_event(p, limit=limit)
    return p.value


class TestBasics:
    def test_browse_initial_price(self):
        cluster, service = build()
        app = service.app_server(cluster.nodes[1])

        def main(env):
            price, bids = yield app.browse(2)
            return price, bids

        assert run(cluster, main(cluster.env)) == (100, 0)

    def test_single_bid_updates_state(self):
        cluster, service = build()
        app = service.app_server(cluster.nodes[1])

        def main(env):
            result = yield app.place_bid(1, 150)
            return result

        result = run(cluster, main(cluster.env))
        assert result.accepted and result.price == 150
        cluster.env.run(until=cluster.env.now + 1e5)
        assert service.true_state(1) == (150, 1)

    def test_low_bid_rejected(self):
        cluster, service = build()
        app = service.app_server(cluster.nodes[1])

        def main(env):
            yield app.place_bid(1, 200)
            result = yield app.place_bid(1, 150)
            return result

        result = run(cluster, main(cluster.env))
        assert not result.accepted
        assert result.reason == "price moved"
        assert result.price == 200

    def test_catalog_snapshot(self):
        cluster, service = build(n_items=3)
        app = service.app_server(cluster.nodes[1])

        def main(env):
            yield app.place_bid(0, 111)
            page = yield app.buy_now_snapshot([0, 1, 2])
            return page

        page = run(cluster, main(cluster.env))
        assert page[0][0] == 111
        assert page[1] == (100, 0) and page[2] == (100, 0)

    def test_bad_config(self):
        cluster = Cluster(n_nodes=2, seed=0)
        with pytest.raises(ConfigError):
            AuctionService(cluster, n_items=0)


class TestConcurrency:
    def test_no_lost_bids_across_app_servers(self):
        """N app servers bid concurrently with increasing amounts on one
        item: the final bid count equals the number of accepted bids and
        the price is the maximum accepted amount."""
        cluster, service = build(n_items=1, n_nodes=6)
        apps = [service.app_server(n) for n in cluster.nodes[1:]]
        results = []

        def bidder(env, app, base):
            for i in range(4):
                r = yield app.place_bid(0, base + i * 50)
                results.append(r)
                yield env.timeout(37.0)

        procs = [cluster.env.process(bidder(cluster.env, app,
                                            120 + k * 7))
                 for k, app in enumerate(apps)]
        done = cluster.env.all_of(procs)
        cluster.env.run_until_event(done, limit=1e9)
        cluster.env.run(until=cluster.env.now + 1e5)

        accepted = [r for r in results if r.accepted]
        price, bids = service.true_state(0)
        assert bids == len(accepted) == service.accepted_bids
        assert price == max(r.price for r in accepted)
        assert service.rejected_bids == len(results) - len(accepted)

    def test_prices_monotone_per_item(self):
        cluster, service = build(n_items=2, n_nodes=5)
        apps = [service.app_server(n) for n in cluster.nodes[1:]]
        history = {0: [], 1: []}

        def bidder(env, app, item, seedval):
            for i in range(5):
                current, _ = yield app.browse(item)
                r = yield app.place_bid(item, current + 10 + seedval)
                if r.accepted:
                    history[item].append(r.price)
                yield env.timeout(29.0)

        procs = []
        for k, app in enumerate(apps):
            procs.append(cluster.env.process(
                bidder(cluster.env, app, k % 2, k)))
        done = cluster.env.all_of(procs)
        cluster.env.run_until_event(done, limit=1e9)
        for item, prices in history.items():
            assert prices == sorted(prices), f"item {item} went backwards"

    def test_browse_staleness_is_bounded(self):
        """DELTA coherence: a browse may lag, but never more than delta
        bids behind the authoritative state."""
        cluster, service = build(n_items=1, n_nodes=4)
        writer = service.app_server(cluster.nodes[1])
        reader = service.app_server(cluster.nodes[2])

        def main(env):
            worst = 0
            price = 100
            for i in range(10):
                price += 20
                yield writer.place_bid(0, price)
                _p, seen_bids = yield reader.browse(0)
                _tp, true_bids = service.true_state(0)
                worst = max(worst, true_bids - seen_bids)
            return worst

        worst = run(cluster, main(cluster.env))
        assert worst <= service.delta
