"""Quorum-fenced lock-home failover under partitions (acceptance).

A symmetric partition that isolates a lock home must trigger a
majority-side rehome within the detection bound, while a minority-side
front must provably NOT evict the majority's homes — both asserted by
replaying the exported trace through the oracles (HAOracle included)."""

from repro.chaos import get_scenario, run_schedule
from repro.chaos.scenarios import HOLD_US, PERIOD_US
from repro.verify import ALL_ORACLES, HAOracle, TraceView, replay_fresh

START = 6_000.0
UNTIL = 20_000.0


def partition_schedule(groups):
    return [{"kind": "partition", "groups": groups, "start": START,
             "until": UNTIL, "oneway": False}]


def run_locks(groups, fence=True, seed=3):
    sc = get_scenario("locks")
    obs = sc.builder(seed, sc.n_nodes, partition_schedule(groups), fence)
    return obs


class TestMajorityFailover:
    GROUPS = [[0, 1, 2], [3, 4]]  # front keeps quorum; node 3 homes locks

    def test_rehome_within_detection_bound(self):
        obs = run_locks(self.GROUPS)
        rehomes = obs.trace.select(prefix="lock.rehome")
        assert rehomes, "isolated lock home was never failed over"
        # detection bound: phi confirmation + gate hold + probe slack
        bound = 2_120.0 + HOLD_US + 2 * PERIOD_US
        for ev in rehomes:
            assert ev.fields["frm"] == 3
            assert ev.fields["to"] in (0, 1, 2)  # stays on our side
            assert START < ev.t <= START + bound

    def test_trace_passes_all_oracles_with_live_ha_expectation(self):
        obs = run_locks(self.GROUPS)
        expects = obs.trace.select(prefix="ha.expect")
        assert any(e.fields["kind"] == "failover" for e in expects)
        view = TraceView.from_obs(obs).require_complete()
        oracles, violations = replay_fresh(view, ALL_ORACLES)
        assert violations == []
        ha = next(o for o in oracles if isinstance(o, HAOracle))
        assert ha.checked > 0  # the liveness assertion really ran

    def test_rehome_bumps_epoch(self):
        obs = run_locks(self.GROUPS)
        reclaims = obs.trace.select(prefix="lock.reclaim")
        by_lock = {}
        for ev in reclaims:
            assert ev.fields["new_ep"] > ev.fields["old_ep"]
            by_lock[ev.fields["lock"]] = ev.fields["new_ep"]
        assert by_lock  # every rehomed lock advanced its fencing epoch


class TestMinorityFenced:
    GROUPS = [[0, 1], [2, 3, 4]]  # front side lost quorum

    def test_minority_cannot_evict_majority_homes(self):
        obs = run_locks(self.GROUPS)
        assert obs.trace.select(prefix="lock.rehome") == []
        fenced = obs.trace.select(prefix="detect.fenced")
        assert {e.fields["watched"] for e in fenced} >= {2, 3, 4}

    def test_trace_passes_oracles_with_no_failover_expectation(self):
        obs = run_locks(self.GROUPS)
        expects = obs.trace.select(prefix="ha.expect")
        assert any(e.fields["kind"] == "no-failover" for e in expects)
        view = TraceView.from_obs(obs).require_complete()
        _oracles, violations = replay_fresh(view, ALL_ORACLES)
        assert violations == []

    def test_without_fence_split_brain_is_flagged(self):
        """The seeded bug: same partition, no quorum gate — the oracle
        must flag the minority-side eviction as a safety violation."""
        rec = run_schedule("locks-nofence",
                           partition_schedule(self.GROUPS), 3)
        assert rec["verdict"] == "violation"
        assert any("split-brain" in m for m in rec["violation_msgs"])
