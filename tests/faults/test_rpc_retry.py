"""RPC reliability under message loss: timeout, retry, at-most-once."""

import pytest

from repro.errors import ConfigError, TimeoutError
from repro.net import Cluster
from repro.faults import FaultPlan
from repro.transport import RpcClient, RpcServer, TcpEndpoint


def build(plan=None, seed=0):
    cluster = Cluster(n_nodes=2, seed=seed)
    if plan is not None:
        cluster.install_faults(plan)
    served = []

    def handler(req):
        served.append(req)
        return {"echo": req}, 32, 1.0

    server = RpcServer(TcpEndpoint(cluster.nodes[0]), port=9,
                       handler=handler)
    server.start()
    client = RpcClient(TcpEndpoint(cluster.nodes[1]))
    return cluster, server, client, served


class TestRetry:
    def test_all_calls_complete_under_heavy_drop(self):
        """40% loss each way: every call still completes, and despite
        the re-sends each request executes the handler exactly once."""
        cluster, server, client, served = build(
            FaultPlan().drop_messages(0.4, start=50.0))
        replies = []

        def app(env):
            chan = yield client.open(0, port=9)
            for i in range(30):
                r = yield chan.call(i, size=64, timeout_us=2_000.0,
                                    retries=8)
                replies.append(r)
            return chan

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p, limit=1e9)
        chan = p.value
        assert replies == [{"echo": i} for i in range(30)]
        # at-most-once: duplicate requests were answered from the
        # server's dedup cache, not re-executed
        assert sorted(served) == list(range(30))
        assert chan.timeouts > 0  # the drops actually bit

    def test_timeout_without_retries_raises(self):
        cluster, server, client, served = build(
            FaultPlan().drop_messages(1.0, src=1, dst=0, start=50.0))

        def app(env):
            chan = yield client.open(0, port=9)
            yield env.timeout(100.0)  # enter the loss window first
            with pytest.raises(TimeoutError):
                yield chan.call("x", size=64, timeout_us=500.0)
            return env.now

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p, limit=1e9)
        assert served == []  # request never arrived

    def test_retry_budget_exhaustion_raises(self):
        cluster, server, client, served = build(
            FaultPlan().drop_messages(1.0, src=1, dst=0, start=50.0))

        def app(env):
            chan = yield client.open(0, port=9)
            yield env.timeout(100.0)  # enter the loss window first
            t0 = env.now
            with pytest.raises(TimeoutError):
                yield chan.call("x", size=64, timeout_us=100.0,
                                retries=3, backoff=2.0)
            return env.now - t0

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p, limit=1e9)
        # four attempts with doubling deadlines: 100+200+400+800
        assert p.value >= 1_500.0

    def test_late_reply_satisfies_retried_call(self):
        """A reply that arrives after its attempt timed out must still
        complete the call (it matches by request id, not by attempt)."""
        cluster, server, client, served = build(
            FaultPlan().degrade_link(50.0, src=0, dst=1,
                                     start=0.0, until=3_000.0))

        def app(env):
            chan = yield client.open(0, port=9)
            r = yield chan.call("slow", size=64, timeout_us=300.0,
                                retries=10)
            return r, chan

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p, limit=1e9)
        r, chan = p.value
        assert r == {"echo": "slow"}
        assert served.count("slow") == 1  # replays, not re-executions

    def test_validation(self):
        cluster, server, client, served = build()

        def app(env):
            chan = yield client.open(0, port=9)
            with pytest.raises(ConfigError):
                chan.call("x", retries=1)            # retries need timeout
            with pytest.raises(ConfigError):
                chan.call("x", timeout_us=-1.0)
            with pytest.raises(ConfigError):
                chan.call("x", timeout_us=10.0, retries=-1)
            with pytest.raises(ConfigError):
                chan.call("x", timeout_us=10.0, retries=1, backoff=0.5)

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p, limit=1e9)

    def test_fault_free_calls_unchanged(self):
        """Without a timeout the legacy raw path is used — and with one
        but no faults, results and handler counts match exactly."""
        cluster, server, client, served = build()
        replies = []

        def app(env):
            chan = yield client.open(0, port=9)
            r1 = yield chan.call("a", size=16)
            r2 = yield chan.call("b", size=16, timeout_us=10_000.0,
                                 retries=2)
            replies.extend([r1, r2])
            return chan

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p, limit=1e9)
        chan = p.value
        assert replies == [{"echo": "a"}, {"echo": "b"}]
        assert served == ["a", "b"]
        assert chan.timeouts == 0 and server.dup_requests == 0
