"""Partition and gray-failure fault classes: plan validation (error
messages must name the offending value and the fault kind), symmetric
and one-way cut enforcement, heal, slow-node latency multipliers, and
credit-stall wedging of the flow-control return path."""

import math

import pytest

from repro.errors import ConfigError, NodeDownError, PartitionError
from repro.net import Cluster
from repro.faults import FaultPlan
from repro.transport import CreditFlowSender, FlowReceiver


def make_cluster(n=4, seed=0):
    return Cluster(n_nodes=n, seed=seed)


class TestPlanValidation:
    """Every rejection names the fault kind and the bad value."""

    def test_bad_rate_names_kind_and_value(self):
        with pytest.raises(ConfigError) as exc:
            FaultPlan().drop_messages(1.5)
        assert "drop_messages" in str(exc.value)
        assert "1.5" in str(exc.value)
        with pytest.raises(ConfigError) as exc:
            FaultPlan().fail_verbs(-0.25)
        assert "fail_verbs" in str(exc.value)
        assert "-0.25" in str(exc.value)

    def test_bad_window_names_kind_and_values(self):
        with pytest.raises(ConfigError) as exc:
            FaultPlan().partition([[0], [1]], start=50.0, until=10.0)
        msg = str(exc.value)
        assert "partition" in msg and "[50.0, 10.0)" in msg
        with pytest.raises(ConfigError) as exc:
            FaultPlan().slow_node(1, 4.0, start=-5.0, until=10.0)
        msg = str(exc.value)
        assert "slow_node" in msg and "[-5.0, 10.0)" in msg
        with pytest.raises(ConfigError) as exc:
            FaultPlan().stall_credits(1, start=10.0, until=10.0)
        assert "stall_credits" in str(exc.value)

    def test_partition_group_validation(self):
        with pytest.raises(ConfigError) as exc:
            FaultPlan().partition([[0, 1]])
        assert "two groups" in str(exc.value)
        with pytest.raises(ConfigError) as exc:
            FaultPlan().partition([[0], [1], [2]], oneway=True)
        assert "one-way" in str(exc.value)
        with pytest.raises(ConfigError):
            FaultPlan().partition([[0], []])
        with pytest.raises(ConfigError) as exc:
            FaultPlan().partition([[0, 1], [1, 2]])
        assert "node 1" in str(exc.value)

    def test_slow_node_factor_validation(self):
        with pytest.raises(ConfigError) as exc:
            FaultPlan().slow_node(0, 0.5)
        assert "slow_node" in str(exc.value)
        assert "0.5" in str(exc.value)

    def test_new_classes_extend_is_empty(self):
        assert FaultPlan().is_empty
        assert not FaultPlan().partition([[0], [1]]).is_empty
        assert not FaultPlan().slow_node(0, 2.0).is_empty
        assert not FaultPlan().stall_credits(0).is_empty


def read_between(cluster, src_id, dst_id, seg):
    """Run one RDMA read src -> dst, returning (ok, duration)."""
    def app(env):
        t0 = env.now
        try:
            yield cluster.nodes[src_id].nic.rdma_read(
                dst_id, seg.addr, seg.rkey, 64)
        except NodeDownError as exc:
            return exc, env.now - t0
        return None, env.now - t0

    p = cluster.env.process(app(cluster.env))
    cluster.env.run_until_event(p, limit=1e9)
    return p.value


class TestSymmetricPartition:
    def test_cut_fails_both_directions_same_side_flows(self):
        cluster = make_cluster()
        inj = cluster.install_faults(
            FaultPlan().partition([[0, 1], [2, 3]], start=0.0,
                                  until=50_000.0))
        segs = {i: cluster.nodes[i].memory.register(64, name=f"s{i}")
                for i in range(4)}
        exc, _ = read_between(cluster, 0, 2, segs[2])
        assert isinstance(exc, PartitionError)
        exc, _ = read_between(cluster, 2, 0, segs[0])
        assert isinstance(exc, PartitionError)  # symmetric: both ways
        exc, _ = read_between(cluster, 0, 1, segs[1])
        assert exc is None  # same side unaffected
        exc, _ = read_between(cluster, 3, 2, segs[2])
        assert exc is None
        assert inj.transfers_partitioned == 2

    def test_partition_error_is_indistinguishable_from_node_down(self):
        # initiators see an RC retry-exceeded completion either way
        assert issubclass(PartitionError, NodeDownError)

    def test_cut_failure_takes_detection_delay(self):
        cluster = make_cluster()
        inj = cluster.install_faults(
            FaultPlan().partition([[0], [1, 2, 3]], until=1_000.0))
        seg = cluster.nodes[1].memory.register(64, name="s")
        exc, took = read_between(cluster, 0, 1, seg)
        assert isinstance(exc, PartitionError)
        assert took >= inj.detect_us  # not an instant oracle failure

    def test_heal_restores_traffic(self):
        cluster = make_cluster()
        cluster.install_faults(
            FaultPlan().partition([[0], [1, 2, 3]], start=0.0,
                                  until=500.0))
        seg = cluster.nodes[1].memory.register(64, name="s")

        def app(env):
            yield env.timeout(600.0)  # wait out the window
            yield cluster.nodes[0].nic.rdma_read(1, seg.addr, seg.rkey, 8)
            return env.now

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p, limit=1e9)
        assert p.value < 700.0

    def test_unlisted_node_bridges_both_sides(self):
        cluster = make_cluster()
        cluster.install_faults(
            FaultPlan().partition([[0], [1]], until=50_000.0))
        segs = {i: cluster.nodes[i].memory.register(64, name=f"s{i}")
                for i in range(4)}
        for src, dst in ((0, 2), (2, 0), (1, 3), (3, 1), (2, 3)):
            exc, _ = read_between(cluster, src, dst, segs[dst])
            assert exc is None, (src, dst)

    def test_partition_window_events_in_trace(self):
        cluster = make_cluster()
        obs = cluster.observe(sanitize=False)
        cluster.install_faults(
            FaultPlan().partition([[0, 1], [2, 3]], start=100.0,
                                  until=300.0))
        cluster.run(until=1_000.0)
        etypes = [e.etype
                  for e in obs.trace.select(prefix="fault.partition")]
        assert etypes == ["fault.partition", "fault.partition.heal"]


class TestOneWayPartition:
    def test_forward_verb_cut(self):
        cluster = make_cluster()
        inj = cluster.install_faults(
            FaultPlan().partition_oneway([0], [1], until=50_000.0))
        seg = cluster.nodes[1].memory.register(64, name="s")
        exc, _ = read_between(cluster, 0, 1, seg)
        assert isinstance(exc, PartitionError)
        assert inj.transfers_partitioned >= 1

    def test_reverse_messages_flow_forward_messages_drop(self):
        """The asymmetric-reachability gray failure: sends against the
        cut direction vanish, sends along the open direction arrive."""
        cluster = make_cluster()
        cluster.install_faults(
            FaultPlan().partition_oneway([0], [1], until=50_000.0))
        got = []

        def rx(env):
            msg = yield cluster.nodes[0].nic.recv(tag="up")
            got.append(msg.payload)

        def tx(env):
            cluster.nodes[0].nic.send(1, payload="down", size=64,
                                      tag="down")  # crosses the cut
            cluster.nodes[1].nic.send(0, payload="up", size=64,
                                      tag="up")    # open direction
            yield env.timeout(0.0)

        cluster.env.process(rx(cluster.env))
        cluster.env.process(tx(cluster.env))
        cluster.run(until=1_000.0)
        assert got == ["up"]

    def test_response_leg_cut_fails_read_from_far_side(self):
        """A one-way cut A->B also breaks B's two-leg verbs against A:
        the request crosses fine but the data leg cannot return, and
        the initiator sees retry exhaustion (NodeDownError shape)."""
        cluster = make_cluster()
        cluster.install_faults(
            FaultPlan().partition_oneway([0], [1], until=50_000.0))
        seg = cluster.nodes[0].memory.register(64, name="s")
        exc, _ = read_between(cluster, 1, 0, seg)
        assert isinstance(exc, NodeDownError)


class TestSlowNode:
    def timed_read(self, plan, size=1 << 16):
        cluster = make_cluster()
        cluster.install_faults(plan)
        seg = cluster.nodes[1].memory.register(size, name="tgt")

        def app(env):
            t0 = env.now
            yield cluster.nodes[0].nic.rdma_read(1, seg.addr, seg.rkey,
                                                 size)
            return env.now - t0

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p, limit=1e9)
        return p.value

    def test_slow_node_multiplies_latency(self):
        base = self.timed_read(FaultPlan())
        slow = self.timed_read(FaultPlan().slow_node(1, 10.0))
        assert slow > base * 3

    def test_slow_window_expires(self):
        inside = self.timed_read(FaultPlan().slow_node(1, 10.0,
                                                       until=1e9))
        after = self.timed_read(FaultPlan().slow_node(1, 10.0,
                                                      until=0.001))
        assert after < inside / 2

    def test_other_nodes_unaffected(self):
        cluster = make_cluster()
        cluster.install_faults(FaultPlan().slow_node(3, 50.0))
        seg = cluster.nodes[1].memory.register(64, name="s")
        exc, took = read_between(cluster, 0, 1, seg)
        assert exc is None and took < 100.0


class TestCreditStall:
    def stream_time(self, plan, n_msgs=12):
        cluster = Cluster(n_nodes=2, seed=0)
        if plan is not None:
            cluster.install_faults(plan)
        rx = FlowReceiver(cluster.nodes[1], nbufs=4, buf_bytes=4_096)
        sender = CreditFlowSender(cluster.nodes[0], rx)
        p = cluster.env.process(sender.stream(n_msgs, 1_024))
        cluster.env.run_until_event(p, limit=1e9)
        return cluster.env.now

    def test_stalled_credits_wedge_sender_until_window_closes(self):
        base = self.stream_time(None)
        stall_until = 5_000.0
        stalled = self.stream_time(
            FaultPlan().stall_credits(1, start=0.0, until=stall_until))
        # the sender exhausts its 4 credits, then waits for the stalled
        # returns: completion lands after the stall window, not before
        assert base < stall_until
        assert stalled > stall_until

    def test_stall_on_other_node_is_noop(self):
        base = self.stream_time(None)
        other = self.stream_time(
            FaultPlan().stall_credits(0, start=0.0, until=5_000.0))
        # receiver-side credits are what the stall wedges; node 0 is
        # the sender here so its stall never matches
        assert other == pytest.approx(base)
