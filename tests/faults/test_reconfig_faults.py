"""Heartbeat failure detection and failure-aware reconfiguration."""

import pytest

from repro.errors import ConfigError
from repro.net import Cluster
from repro.faults import FaultPlan
from repro.monitor import HeartbeatDetector
from repro.reconfig import ReconfigManager, Service

PERIOD = 1_000.0
TIMEOUT = 200.0
MISSES = 3
CONFIRM = 1  # hysteresis: extra misses to confirm a suspect dead
#: worst-case crash -> "dead" latency: the probe in flight when the
#: crash hits, then MISSES + CONFIRM failed probes, each a period +
#: probe timeout
DETECT_BOUND = PERIOD * (MISSES + CONFIRM + 1) + TIMEOUT


def build(n=6, seed=0, plan=None):
    cluster = Cluster(n_nodes=n, seed=seed)
    inj = cluster.install_faults(plan or FaultPlan())
    front, backs = cluster.nodes[0], cluster.nodes[1:]
    det = HeartbeatDetector(front, backs, period_us=PERIOD,
                            timeout_us=TIMEOUT, miss_threshold=MISSES)
    return cluster, inj, front, backs, det


class TestHeartbeat:
    def test_all_alive_without_faults(self):
        cluster, inj, front, backs, det = build()
        cluster.run(until=20_000.0)
        assert det.transitions == []
        assert det.dead_ids == set()
        assert det.probes > 0

    def test_crash_detected_within_bound(self):
        crash_at = 5_000.0
        cluster, inj, front, backs, det = build(
            plan=FaultPlan().crash(2, at=crash_at))
        cluster.run(until=20_000.0)
        assert det.is_dead(2)
        (t, node_id, what), = det.transitions
        assert (node_id, what) == (2, "dead")
        assert crash_at <= t <= crash_at + DETECT_BOUND

    def test_restart_detected_as_alive(self):
        cluster, inj, front, backs, det = build(
            plan=FaultPlan().crash(2, at=5_000.0, restart_at=15_000.0))
        cluster.run(until=25_000.0)
        assert [x[1:] for x in det.transitions] == [(2, "dead"),
                                                    (2, "alive")]
        assert not det.is_dead(2)

    def test_config_validation(self):
        cluster = Cluster(n_nodes=2, seed=0)
        with pytest.raises(ConfigError):
            HeartbeatDetector(cluster.nodes[0], [cluster.nodes[0]])
        with pytest.raises(ConfigError):
            HeartbeatDetector(cluster.nodes[0], [cluster.nodes[1]],
                              period_us=-1.0)
        with pytest.raises(ConfigError):
            HeartbeatDetector(cluster.nodes[0], [cluster.nodes[1]],
                              miss_threshold=0)


class TestFailureAwareReconfig:
    def test_evict_within_one_monitoring_period(self):
        """Eviction must land within one detection window of the crash:
        the manager reacts to the transition, not to its own poll."""
        crash_at = 5_000.0
        cluster, inj, front, backs, det = build(
            plan=FaultPlan().crash(2, at=crash_at))
        web = Service("web", backs[:3], priority=2, min_nodes=1)
        mgr = ReconfigManager(front, [web], detector=det)
        cluster.run(until=20_000.0)
        evicts = [e for e in mgr.evictions if e[3] == "evict"]
        assert [(e[1], e[2]) for e in evicts] == [(2, "web")]
        assert crash_at <= evicts[0][0] <= crash_at + DETECT_BOUND
        assert all(n.id != 2 for n in web.nodes)

    def test_backfill_from_lower_priority_donor(self):
        """A service dropped below min_nodes steals a live node from the
        lowest-priority donor that can spare one."""
        cluster, inj, front, backs, det = build(
            n=7, plan=FaultPlan().crash(1, at=5_000.0))
        web = Service("web", backs[:2], priority=5, min_nodes=2)
        batch = Service("batch", backs[2:], priority=1, min_nodes=1)
        mgr = ReconfigManager(front, [web, batch], detector=det)
        cluster.run(until=20_000.0)
        kinds = [e[3] for e in mgr.evictions]
        assert kinds == ["evict", "backfill"]
        assert len(web.nodes) == web.min_nodes
        assert all(not det.is_dead(n.id) for n in web.nodes)
        assert len(batch.nodes) >= batch.min_nodes

    def test_restore_after_restart(self):
        cluster, inj, front, backs, det = build(
            plan=FaultPlan().crash(2, at=5_000.0, restart_at=20_000.0))
        web = Service("web", backs[:3], priority=2, min_nodes=1)
        mgr = ReconfigManager(front, [web], detector=det)
        cluster.run(until=40_000.0)
        assert [e[3] for e in mgr.evictions] == ["evict", "restore"]
        assert any(n.id == 2 for n in web.nodes)

    def test_all_nodes_dead_requests_shed_not_crashed(self):
        """With every node of a service evicted, submissions are shed
        and counted instead of raising."""
        cluster, inj, front, backs, det = build(
            plan=FaultPlan().crash(1, at=2_000.0).crash(2, at=2_000.0))
        web = Service("web", backs[:2], priority=2, min_nodes=1)
        mgr = ReconfigManager(front, [web], detector=det)

        def load(env):
            for _ in range(20):
                yield env.timeout(1_000.0)
                web.submit(50.0)

        cluster.env.process(load(cluster.env))
        cluster.run(until=25_000.0)
        assert web.nodes == []
        assert web.dropped > 0
        assert web.submitted + web.dropped == 20

    def test_detector_feeds_lock_manager_oracle(self):
        """The same detector slots into N-CoSED as its failure oracle:
        reclaim happens only after *detection*, not at the crash."""
        from repro.dlm import LockMode, NCoSEDManager

        crash_at = 5_000.0
        cluster, inj, front, backs, det = build(
            plan=FaultPlan().crash(1, at=crash_at))
        manager = NCoSEDManager(cluster, n_locks=1, lease_us=500.0,
                                member_nodes=[front], detector=det)
        holder = manager.client(backs[0])  # node 1: will crash

        def hold(env):
            yield holder.acquire(0, LockMode.EXCLUSIVE)
            yield env.timeout(1e9)

        cluster.env.process(hold(cluster.env))
        cluster.run(until=20_000.0)
        assert manager.reclaims
        t_dead = det.transitions[0][0]
        t_reclaim = manager.reclaims[0][0]
        assert t_reclaim >= t_dead  # oracle-gated, not ground truth
        assert t_reclaim <= t_dead + manager.reap_every_us
