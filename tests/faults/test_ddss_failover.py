"""DDSS replication: puts reach all reachable copies, gets fail over."""

import pytest

from repro.errors import DDSSError
from repro.net import Cluster
from repro.faults import FaultPlan
from repro.ddss import DDSS, Coherence


def build(n=4, seed=0, plan=None):
    cluster = Cluster(n_nodes=n, seed=seed)
    inj = cluster.install_faults(plan) if plan is not None else None
    ddss = DDSS(cluster)
    return cluster, ddss, inj


def drive(cluster, gen):
    p = cluster.env.process(gen)
    cluster.env.run_until_event(p, limit=1e9)
    return p.value


class TestReplicatedAllocation:
    def test_replicas_placed_on_distinct_members(self):
        cluster, ddss, _ = build()
        client = ddss.client(cluster.nodes[0])

        def app(env):
            key = yield client.allocate(64, Coherence.NULL, replicas=2)
            meta = yield client.lookup(key)
            return meta

        meta = drive(cluster, app(cluster.env))
        homes = [h for h, _, _ in meta.copies]
        assert len(homes) == 3
        assert len(set(homes)) == 3

    def test_too_many_replicas_rejected(self):
        cluster, ddss, _ = build(n=2)
        client = ddss.client(cluster.nodes[0])

        def app(env):
            with pytest.raises(DDSSError):
                yield client.allocate(64, replicas=2)

        drive(cluster, app(cluster.env))

    def test_locked_coherence_cannot_replicate(self):
        cluster, ddss, _ = build()
        client = ddss.client(cluster.nodes[0])

        def app(env):
            with pytest.raises(DDSSError):
                yield client.allocate(64, Coherence.WRITE, replicas=1)

        drive(cluster, app(cluster.env))

    def test_free_releases_replica_blocks(self):
        cluster, ddss, _ = build()
        client = ddss.client(cluster.nodes[0])

        def app(env):
            key = yield client.allocate(64, replicas=2)
            meta = yield client.lookup(key)
            yield client.free(key)
            return meta

        meta = drive(cluster, app(cluster.env))
        for home, _, _ in meta.copies:
            alloc = ddss.allocator(home)
            assert alloc.used_bytes == 0


class TestFailover:
    PRIMARY = 1  # not the metadata node (0), which must stay reachable

    def crashing_setup(self, coherence, crash_at=5_000.0, restart_at=None,
                       seed=0):
        """A unit whose *primary* home crashes at ``crash_at``."""
        plan = FaultPlan()
        cluster = Cluster(n_nodes=5, seed=seed)
        inj = cluster.install_faults(plan)
        ddss = DDSS(cluster)
        # writer on a node that is neither primary nor replica home
        client = ddss.client(cluster.nodes[4])

        def setup(env):
            key = yield client.allocate(64, coherence,
                                        placement=self.PRIMARY, replicas=2)
            meta = yield client.lookup(key)
            yield client.put(key, b"before-crash")
            return key, meta

        key, meta = drive(cluster, setup(cluster.env))
        assert meta.home == self.PRIMARY
        cluster.env.process(self._crash(cluster.env, inj,
                                        crash_at, restart_at))
        return cluster, ddss, client, inj, key

    def _crash(self, env, inj, at, restart_at):
        yield env.timeout(at - env.now)
        inj.crash(self.PRIMARY)
        if restart_at is not None:
            yield env.timeout(restart_at - env.now)
            inj.restart(self.PRIMARY)

    @pytest.mark.parametrize("coherence", [Coherence.NULL, Coherence.DELTA])
    def test_read_fails_over_to_replica(self, coherence):
        cluster, ddss, client, inj, key = self.crashing_setup(coherence)

        def app(env):
            yield env.timeout(6_000.0 - env.now)  # primary now down
            data = yield client.get(key, length=len(b"before-crash"))
            return bytes(data)

        value = drive(cluster, app(cluster.env))
        assert value == b"before-crash"
        assert client.failovers >= 1

    @pytest.mark.parametrize("coherence", [Coherence.NULL, Coherence.DELTA])
    def test_write_then_read_with_primary_down(self, coherence):
        """A put during the outage lands on the replicas; a subsequent
        get returns that last acknowledged write."""
        cluster, ddss, client, inj, key = self.crashing_setup(coherence)
        # second client with a *cold* data cache so the read is remote
        reader = ddss.client(cluster.nodes[0])

        def app(env):
            yield env.timeout(6_000.0 - env.now)
            yield reader.lookup(key)         # warm meta only
            yield client.put(key, b"during-outage")
            data = yield reader.get(key, length=len(b"during-outage"))
            return bytes(data)

        value = drive(cluster, app(cluster.env))
        assert value == b"during-outage"
        assert client.failovers >= 1  # the put skipped the dead primary

    def test_no_reachable_copy_raises(self):
        cluster, ddss, client, inj, key = self.crashing_setup(
            Coherence.NULL)

        def app(env):
            yield env.timeout(6_000.0 - env.now)
            inj.crash(2)
            inj.crash(3)  # all three copies now unreachable
            with pytest.raises(DDSSError):
                yield client.get(key, length=4)

        drive(cluster, app(cluster.env))

    def test_unreplicated_unit_unaffected(self):
        """Replication is strictly opt-in: a plain unit still works and
        its meta carries no replicas."""
        cluster, ddss, _ = build()
        client = ddss.client(cluster.nodes[1])

        def app(env):
            key = yield client.allocate(32, Coherence.NULL, placement=0)
            meta = yield client.lookup(key)
            yield client.put(key, b"plain")
            data = yield client.get(key, length=5)
            return meta, bytes(data)

        meta, data = drive(cluster, app(cluster.env))
        assert meta.replicas == ()
        assert data == b"plain"
        assert client.failovers == 0
