"""Unit tests for the fault substrate itself (plan + injector + hooks)."""

import pytest

from repro.errors import ConfigError, NodeDownError
from repro.net import Cluster
from repro.faults import FaultInjector, FaultPlan


def make_cluster(n=3, seed=0):
    return Cluster(n_nodes=n, seed=seed)


class TestFaultPlan:
    def test_empty_plan(self):
        assert FaultPlan().is_empty
        assert not FaultPlan().crash(1, at=10.0).is_empty

    def test_builders_chain(self):
        plan = (FaultPlan()
                .crash(0, at=5.0, restart_at=50.0)
                .drop_messages(0.1, src=1)
                .duplicate_messages(0.2, dst=2)
                .fail_verbs(0.3, start=10.0, until=20.0)
                .degrade_link(4.0))
        assert len(plan.crashes) == 1
        assert len(plan.message_faults) == 2
        assert len(plan.verb_faults) == 1
        assert len(plan.degrades) == 1

    def test_bad_inputs_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan().crash(0, at=-1.0)
        with pytest.raises(ConfigError):
            FaultPlan().crash(0, at=10.0, restart_at=5.0)
        with pytest.raises(ConfigError):
            FaultPlan().drop_messages(1.5)
        with pytest.raises(ConfigError):
            FaultPlan().fail_verbs(0.5, start=20.0, until=10.0)
        with pytest.raises(ConfigError):
            FaultPlan().degrade_link(0.5)


class TestInjector:
    def test_one_injector_per_cluster(self):
        cluster = make_cluster()
        cluster.install_faults()
        with pytest.raises(ConfigError):
            cluster.install_faults()

    def test_crash_schedule_logged(self):
        cluster = make_cluster()
        inj = cluster.install_faults(
            FaultPlan().crash(1, at=100.0, restart_at=300.0))
        cluster.run(until=500.0)
        assert inj.log == [(100.0, "crash", 1), (300.0, "restart", 1)]
        assert not inj.is_down(1)

    def test_transfer_to_down_node_fails(self):
        cluster = make_cluster()
        inj = cluster.install_faults(FaultPlan().crash(1, at=0.0))
        src = cluster.nodes[0]
        seg = cluster.nodes[1].memory.register(64, name="tgt")

        def app(env):
            with pytest.raises(NodeDownError):
                yield src.nic.rdma_read(1, seg.addr, seg.rkey, 32)
            return env.now

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p, limit=1e6)
        # the failure surfaces after the RC retry-exceeded delay (plus
        # the NIC's descriptor-post overhead)
        assert inj.detect_us <= p.value <= inj.detect_us + 1.0
        assert inj.transfers_refused == 1

    def test_restart_restores_communication(self):
        cluster = make_cluster()
        cluster.install_faults(FaultPlan().crash(1, at=0.0, restart_at=50.0))
        seg = cluster.nodes[1].memory.register(64, name="tgt")
        seg.write(0, b"\x07" * 8)

        def app(env):
            yield env.timeout(60.0)
            data = yield cluster.nodes[0].nic.rdma_read(
                1, seg.addr, seg.rkey, 8)
            return bytes(data)

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p, limit=1e6)
        assert p.value == b"\x07" * 8

    def test_message_drop_rate_one_drops_everything(self):
        cluster = make_cluster()
        inj = cluster.install_faults(FaultPlan().drop_messages(1.0))
        got = []

        def rx(env):
            msg = yield cluster.nodes[1].nic.recv(tag="t")
            got.append(msg)

        def tx(env):
            for _ in range(5):
                cluster.nodes[0].nic.send(1, payload="x", size=64, tag="t")
                yield env.timeout(10.0)

        cluster.env.process(rx(cluster.env))
        cluster.env.process(tx(cluster.env))
        cluster.run(until=1_000.0)
        assert got == []
        assert inj.messages_dropped == 5

    def test_message_duplication_delivers_twice(self):
        cluster = make_cluster()
        inj = cluster.install_faults(FaultPlan().duplicate_messages(1.0))
        got = []

        def rx(env):
            while True:
                msg = yield cluster.nodes[1].nic.recv(tag="t")
                got.append(msg.mid)

        def tx(env):
            cluster.nodes[0].nic.send(1, payload="x", size=64, tag="t")
            yield env.timeout(0.0)

        cluster.env.process(rx(cluster.env))
        cluster.env.process(tx(cluster.env))
        cluster.run(until=1_000.0)
        assert len(got) == 2 and got[0] == got[1]
        assert inj.messages_duplicated == 1

    def test_verb_fault_window(self):
        from repro.errors import RdmaError
        cluster = make_cluster()
        inj = cluster.install_faults(
            FaultPlan().fail_verbs(1.0, start=0.0, until=100.0))
        seg = cluster.nodes[1].memory.register(64, name="tgt")

        def app(env):
            with pytest.raises(RdmaError):
                yield cluster.nodes[0].nic.rdma_read(1, seg.addr,
                                                     seg.rkey, 8)
            yield env.timeout(200.0)  # leave the failure window
            yield cluster.nodes[0].nic.rdma_read(1, seg.addr, seg.rkey, 8)

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p, limit=1e6)
        assert inj.verbs_failed == 1

    def test_link_degrade_slows_transfers(self):
        def timed_read(plan):
            cluster = make_cluster()
            cluster.install_faults(plan)
            seg = cluster.nodes[1].memory.register(1 << 16, name="tgt")

            def app(env):
                t0 = env.now
                yield cluster.nodes[0].nic.rdma_read(1, seg.addr,
                                                     seg.rkey, 1 << 16)
                return env.now - t0

            p = cluster.env.process(app(cluster.env))
            cluster.env.run_until_event(p, limit=1e6)
            return p.value

        base = timed_read(FaultPlan())
        slow = timed_read(FaultPlan().degrade_link(8.0))
        assert slow > base * 2


class TestNoPlanNoChange:
    """An installed-but-empty injector must not perturb timing at all."""

    def workload_trace(self, install):
        cluster = make_cluster(seed=3)
        if install:
            cluster.install_faults(FaultPlan())
        seg = cluster.nodes[1].memory.register(4096, name="tgt")
        trace = []

        def app(env):
            for size in (64, 512, 4096):
                yield cluster.nodes[0].nic.rdma_read(1, seg.addr,
                                                     seg.rkey, size)
                trace.append(env.now)
            cluster.nodes[0].nic.send(2, payload="ping", size=128, tag="t")
            msg = yield cluster.nodes[2].nic.recv(tag="t")
            trace.append((env.now, msg.payload))

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p, limit=1e6)
        return trace

    def test_empty_injector_timing_identical(self):
        assert self.workload_trace(False) == self.workload_trace(True)


class TestDeterminism:
    def scenario(self, seed):
        cluster = make_cluster(n=4, seed=seed)
        inj = cluster.install_faults(
            FaultPlan()
            .crash(2, at=500.0, restart_at=2_000.0)
            .drop_messages(0.3, until=5_000.0)
            .duplicate_messages(0.2, until=5_000.0))
        delivered = []

        def rx(env):
            while True:
                msg = yield cluster.nodes[1].nic.recv(tag="t")
                delivered.append((env.now, msg.mid))

        def tx(env):
            for i in range(50):
                cluster.nodes[0].nic.send(1, payload=i, size=64, tag="t")
                yield env.timeout(25.0)

        cluster.env.process(rx(cluster.env))
        cluster.env.process(tx(cluster.env))
        cluster.run(until=10_000.0)
        return (delivered, inj.log, inj.messages_dropped,
                inj.messages_duplicated)

    def test_same_seed_same_trace(self):
        assert repr(self.scenario(7)) == repr(self.scenario(7))

    def test_different_seed_different_trace(self):
        assert self.scenario(7)[0] != self.scenario(8)[0]
