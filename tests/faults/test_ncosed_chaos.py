"""Chaos tests: fault-tolerant N-CoSED under crashes and message loss.

The acceptance bar (ISSUE): with a seeded schedule of several node
crashes plus background message drop, every acquire either completes or
raises :class:`LockError` (no hung waiters), no two exclusive holders
overlap within one epoch, and a crashed holder's lock is reclaimed
within one reaper period.
"""

import pytest

from repro.errors import LockError
from repro.net import Cluster
from repro.faults import FaultPlan
from repro.dlm import LockMode, NCoSEDManager

LEASE_US = 400.0


def build(seed=0, n_nodes=8, n_locks=4, plan=None, **mgr_kw):
    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    if plan is not None:
        cluster.install_faults(plan)
    manager = NCoSEDManager(cluster, n_locks=n_locks,
                            lease_us=LEASE_US, **mgr_kw)
    return cluster, manager


def chaos_actor(env, manager, cluster, node_i, lock_i, shared, delay,
                hold, outcomes, tenures):
    """One application thread: acquire, hold, release; never hangs."""
    client = manager.client(cluster.nodes[node_i])
    mode = LockMode.SHARED if shared else LockMode.EXCLUSIVE
    yield env.timeout(delay)
    try:
        yield client.acquire(lock_i, mode)
    except LockError:
        outcomes.append(("gave-up", node_i, lock_i))
        return
    t_grant = env.now
    ep = manager.lock_epoch(lock_i)
    yield env.timeout(hold)
    try:
        yield client.release(lock_i)
    except LockError:
        pass
    outcomes.append(("done", node_i, lock_i))
    tenures.append((lock_i, mode, ep, t_grant, env.now))


def assert_epoch_exclusion(tenures):
    """No two exclusive tenures of one lock overlap within one epoch.

    Overlaps across epochs are legitimate: a lease revocation fences
    the old holder out at the reclaim instant even though its process
    only learns at release time.
    """
    excl = [t for t in tenures if t[1] is LockMode.EXCLUSIVE]
    for i, (lock_a, _, ep_a, s_a, e_a) in enumerate(excl):
        for lock_b, _, ep_b, s_b, e_b in excl[i + 1:]:
            if lock_a != lock_b or ep_a != ep_b:
                continue
            assert e_a <= s_b or e_b <= s_a, (
                f"two exclusive holders of lock {lock_a} in epoch {ep_a}")


class TestChaosSchedule:
    def run_chaos(self, seed):
        """Three crashes (one lock home among them) + 1% message drop."""
        plan = (FaultPlan()
                .crash(2, at=3_000.0, restart_at=9_000.0)
                .crash(5, at=5_000.0, restart_at=12_000.0)
                .crash(6, at=7_000.0)          # stays down
                .drop_messages(0.01))
        cluster, manager = build(seed=seed, plan=plan)
        env = cluster.env
        outcomes, tenures = [], []
        procs = []
        schedule = [
            # (node, lock, shared?, delay, hold) — spread across the
            # crash windows so grants, waits and releases all overlap
            # with failures
            (n, (n + k) % 4, (n + k) % 3 == 0,
             200.0 * k + 37.0 * n, 150.0 + 25.0 * ((n + k) % 5))
            for n in range(8) for k in range(4)
        ]
        for entry in schedule:
            procs.append(env.process(chaos_actor(
                env, manager, cluster, *entry, outcomes, tenures)))
        done = env.all_of(procs)
        env.run_until_event(done, limit=2e6)
        assert done.triggered, "chaos schedule hung"
        # liveness: every actor finished, one way or the other
        assert len(outcomes) == len(schedule)
        return cluster, manager, outcomes, tenures

    def test_liveness_and_epoch_exclusion(self):
        cluster, manager, outcomes, tenures = self.run_chaos(seed=11)
        finished = [o for o in outcomes if o[0] == "done"]
        assert len(finished) >= len(outcomes) // 2, (
            "chaos too destructive: almost nothing completed")
        assert_epoch_exclusion(tenures)
        # quiesce: locks whose home is still alive must drain; node 6
        # is permanently down, so only check locks homed elsewhere
        cluster.env.run(until=cluster.env.now + 50_000.0)
        for lock_id in range(4):
            if manager.home_node(lock_id).id == 6:
                continue
            assert manager.holder_count(lock_id) == 0

    def test_same_seed_identical_trace(self):
        _, m1, o1, t1 = self.run_chaos(seed=11)
        _, m2, o2, t2 = self.run_chaos(seed=11)
        assert repr((o1, t1, m1.reclaims)) == repr((o2, t2, m2.reclaims))


class TestReclaim:
    def test_crashed_holder_reclaimed_within_one_period(self):
        """Holder crashes mid-hold: the reaper reclaims next scan."""
        crash_at = 2_000.0
        plan = FaultPlan().crash(3, at=crash_at)
        cluster, manager = build(seed=1, n_nodes=6, n_locks=1, plan=plan)
        env = cluster.env
        lock_home = manager.home_node(0).id
        assert lock_home != 3  # holder != home for this scenario

        holder = manager.client(cluster.nodes[3])
        waiter = manager.client(cluster.nodes[4])
        got = []

        def hold_forever(env):
            yield holder.acquire(0, LockMode.EXCLUSIVE)
            yield env.timeout(1e9)  # crashes before ever releasing

        def want(env):
            yield env.timeout(crash_at + 10.0)
            yield waiter.acquire(0, LockMode.EXCLUSIVE)
            got.append(env.now)
            yield waiter.release(0)

        env.process(hold_forever(env))
        p = env.process(want(env))
        env.run_until_event(p, limit=1e6)
        # reclaim fired within one reaper period of the crash
        assert manager.reclaims, "no reclaim happened"
        t_reclaim, lock_id, new_ep = manager.reclaims[0]
        assert lock_id == 0 and new_ep >= 1
        assert crash_at <= t_reclaim <= crash_at + manager.reap_every_us
        # and the waiter actually got the lock afterwards
        assert got and got[0] >= t_reclaim

    def test_home_crash_defers_reclaim_until_restart(self):
        """If the lock's *home* is down the word is unreachable; the
        reaper must not fabricate a reclaim it cannot persist."""
        cluster, manager = build(seed=2, n_nodes=4, n_locks=1)
        home_id = manager.home_node(0).id
        inj = cluster.install_faults(
            FaultPlan().crash(home_id, at=1_000.0, restart_at=6_000.0))
        env = cluster.env

        holder = manager.client(cluster.nodes[(home_id + 1) % 4])

        def hold(env):
            yield holder.acquire(0, LockMode.EXCLUSIVE)
            yield env.timeout(1e9)

        env.process(hold(env))
        # crash the *holder* too, while the home is down
        def late_crash(env):
            yield env.timeout(2_000.0)
            inj.crash(holder.node.id)
        env.process(late_crash(env))

        env.run(until=5_000.0)
        assert manager.reclaims == []  # deferred: home unreachable
        env.run(until=10_000.0)
        assert manager.reclaims, "reclaim should fire after home restart"
        assert manager.reclaims[0][0] >= 6_000.0

    def test_crash_during_release_handoff_unblocks_successor(self):
        """Releaser crashes after winning the word but before its xgrant
        reaches the announced successor: the undeliverable hand-off must
        flag the lock for reclaim, or the live successor waits forever.

        (Regression: the dead node's ledger/active records are all gone
        by then, so none of the dead-token reaper rules fire — recovery
        rides on the suspect-lock flag alone.)
        """
        plan = FaultPlan().crash(3, at=1_000.0)
        cluster, manager = build(seed=42, n_nodes=6, n_locks=1, plan=plan)
        env = cluster.env
        assert manager.home_node(0).id != 3

        first = manager.client(cluster.nodes[3])   # crashes mid-release
        second = manager.client(cluster.nodes[4])  # waits on the chain
        got = []

        def holder(env):
            yield first.acquire(0, LockMode.EXCLUSIVE)
            yield env.timeout(1_005.0)  # release just after the crash
            yield first.release(0)

        def waiter(env):
            yield env.timeout(50.0)  # enqueue behind `first`
            yield second.acquire(0, LockMode.EXCLUSIVE)
            got.append(env.now)
            yield second.release(0)

        env.process(holder(env))
        p = env.process(waiter(env))
        env.run_until_event(p, limit=1e6)
        assert got, "successor hung on a lost hand-off"
        assert manager.reclaims and manager.reclaims[0][1] == 0
        assert got[0] >= manager.reclaims[0][0]

    def test_fault_free_ft_mode_never_reclaims(self):
        """Without faults, FT mode must behave exactly like the base
        protocol: all grants FIFO, zero reclaims, word retires to 0."""
        cluster, manager = build(seed=3, n_nodes=6, n_locks=2)
        env = cluster.env
        outcomes, tenures = [], []
        procs = [env.process(chaos_actor(
            env, manager, cluster, n, n % 2, n % 3 == 0,
            50.0 * n, 100.0, outcomes, tenures)) for n in range(6)]
        done = env.all_of(procs)
        env.run_until_event(done, limit=1e6)
        assert done.triggered
        assert all(o[0] == "done" for o in outcomes)
        assert manager.reclaims == []
        env.run(until=env.now + 10_000.0)
        for lock_id in range(2):
            assert manager.holder_count(lock_id) == 0
            assert manager.raw_word(lock_id) >> 48 == 0  # epoch never moved


class TestConfig:
    def test_ft_parameter_validation(self):
        cluster = Cluster(n_nodes=2, seed=0)
        with pytest.raises(LockError):
            NCoSEDManager(cluster, n_locks=1, lease_us=-1.0)
        with pytest.raises(LockError):
            NCoSEDManager(cluster, n_locks=1, lease_us=100.0,
                          max_attempts=0)
