"""Zombie-completion regression: a node that crashes and restarts while
an RDMA transfer is in flight must NOT see the old incarnation's
completion delivered after the restart.  The injector snapshots both
endpoints' incarnation counters when a transfer starts and fences the
completion if either changed mid-flight."""

import pytest

from repro.errors import NodeDownError
from repro.net import Cluster
from repro.faults import FaultPlan


def slow_cluster(plan, n=3, seed=0):
    """Cluster where a 256 KiB read takes long enough to crash into."""
    cluster = Cluster(n_nodes=n, seed=seed)
    inj = cluster.install_faults(plan)
    return cluster, inj


SIZE = 256 * 1024  # ~hundreds of microseconds on the wire


def timed_read(cluster, src, dst, seg, results):
    def app(env):
        try:
            data = yield cluster.nodes[src].nic.rdma_read(
                dst, seg.addr, seg.rkey, SIZE)
        except NodeDownError as exc:
            results.append(("fail", env.now, str(exc)))
        else:
            results.append(("ok", env.now, len(data)))

    return cluster.env.process(app(cluster.env))


def mid_flight_crash_time(seed=0):
    """Time of the halfway point of an unfaulted read, for scheduling."""
    cluster, _ = slow_cluster(FaultPlan(), seed=seed)
    seg = cluster.nodes[1].memory.register(SIZE, name="tgt")
    results = []
    timed_read(cluster, 0, 1, seg, results)
    cluster.run(until=1e9)
    assert results and results[0][0] == "ok"
    return results[0][1] / 2


class TestZombieCompletion:
    def test_target_restart_mid_read_fences_completion(self):
        crash_at = mid_flight_crash_time()
        cluster, inj = slow_cluster(
            FaultPlan().crash(1, at=crash_at,
                              restart_at=crash_at + 1.0))
        seg = cluster.nodes[1].memory.register(SIZE, name="tgt")
        results = []
        timed_read(cluster, 0, 1, seg, results)
        cluster.run(until=1e9)
        # the node was back up before the transfer would have finished,
        # yet the pre-crash completion must not be resurrected
        status, t, msg = results[0]
        assert status == "fail"
        assert "stale completion fenced" in msg
        assert inj.completions_fenced == 1
        assert inj.incarnation(1) == 1  # bumped once, by the crash

    def test_initiator_restart_mid_read_fences_completion(self):
        crash_at = mid_flight_crash_time()
        cluster, inj = slow_cluster(
            FaultPlan().crash(0, at=crash_at,
                              restart_at=crash_at + 1.0))
        seg = cluster.nodes[1].memory.register(SIZE, name="tgt")
        results = []
        timed_read(cluster, 0, 1, seg, results)
        cluster.run(until=1e9)
        assert results[0][0] == "fail"
        assert inj.completions_fenced == 1

    def test_restart_after_completion_is_harmless(self):
        cluster, inj = slow_cluster(
            FaultPlan().crash(1, at=1e6, restart_at=1e6 + 10.0))
        seg = cluster.nodes[1].memory.register(SIZE, name="tgt")
        results = []
        timed_read(cluster, 0, 1, seg, results)
        cluster.run(until=2e6)
        assert results[0][0] == "ok"
        assert results[0][2] == SIZE  # payload intact through the fence
        assert inj.completions_fenced == 0

    def test_unrelated_node_crash_does_not_fence(self):
        crash_at = mid_flight_crash_time()
        cluster, inj = slow_cluster(
            FaultPlan().crash(2, at=crash_at,
                              restart_at=crash_at + 1.0))
        seg = cluster.nodes[1].memory.register(SIZE, name="tgt")
        results = []
        timed_read(cluster, 0, 1, seg, results)
        cluster.run(until=1e9)
        assert results[0][0] == "ok"
        assert inj.completions_fenced == 0

    def test_fence_preserves_down_node_failure(self):
        cluster, inj = slow_cluster(FaultPlan().crash(1, at=0.0))
        seg = cluster.nodes[1].memory.register(SIZE, name="tgt")
        results = []
        timed_read(cluster, 0, 1, seg, results)
        cluster.run(until=1e9)
        status, _t, msg = results[0]
        assert status == "fail"
        assert "stale completion" not in msg  # plain down, not a zombie
