"""Regression tests for per-stream flow-control completion.

Two historical bugs in ``CreditFlowSender.stream`` /
``PacketizedFlowSender.stream``:

* completion was detected by polling every 10 µs, quantizing the
  measured elapsed time (and hence bytes/µs) to the poll period;
* the poll gated on the receiver's *cumulative* ``delivered`` counter,
  so a second ``stream()`` against the same ``FlowReceiver`` returned
  before its own messages drained.

Both are fixed by a per-stream completion event signalled by the
receiver-side drain loop.
"""

import pytest

from repro.net import Cluster, NetworkParams
from repro.transport import (
    CreditFlowSender,
    FlowReceiver,
    PacketizedFlowSender,
)

SENDERS = [CreditFlowSender, PacketizedFlowSender]


@pytest.fixture
def cluster():
    return Cluster(n_nodes=2, params=NetworkParams.infiniband(), seed=0)


@pytest.mark.parametrize("sender_cls", SENDERS)
def test_two_streams_one_receiver(cluster, sender_cls):
    """A reused receiver must not satisfy the second stream early."""
    env = cluster.env
    rx = FlowReceiver(cluster.nodes[1], nbufs=8, buf_bytes=8192)
    tx = sender_cls(cluster.nodes[0], rx)

    results = []

    def driver(env):
        bw1 = yield from tx.stream(40, 256)
        t1 = env.now
        bw2 = yield from tx.stream(40, 256)
        t2 = env.now
        results.append((bw1, t1, bw2, t2 - t1))

    p = env.process(driver(env))
    env.run_until_event(p)
    bw1, dur1, bw2, dur2 = results[0]
    assert rx.delivered == 80
    assert rx.delivered_bytes == 80 * 256
    # the buggy cumulative gate (delivered=40 >= 40 already at the start
    # of stream 2) returned as soon as the send loop finished posting,
    # long before the drain completed: the second stream then reported a
    # wildly inflated bandwidth.  Both streams do identical work, so
    # their durations and bandwidths must be comparable.
    assert dur2 > 0.5 * dur1
    assert bw2 < 2.0 * bw1
    assert bw1 > 0 and bw2 > 0


@pytest.mark.parametrize("sender_cls", SENDERS)
def test_elapsed_not_quantized(cluster, sender_cls):
    """Completion lands on the drain instant, not a 10 µs poll tick."""
    env = cluster.env
    rx = FlowReceiver(cluster.nodes[1], nbufs=8, buf_bytes=8192)
    tx = sender_cls(cluster.nodes[0], rx)
    p = env.process(tx.stream(7, 64))
    env.run_until_event(p)
    # With the poll the stream always ended on a multiple of 10 µs from
    # its start (t0 == 0 here).  Seven 64-byte messages over infiniband
    # drain in a few µs, so a non-multiple finish proves the event path.
    assert p.value > 0
    assert env.now % 10.0 != pytest.approx(0.0, abs=1e-9)


@pytest.mark.parametrize("sender_cls", SENDERS)
def test_concurrent_streams_two_senders(cluster, sender_cls):
    """Two senders sharing one receiver each wait for their own drain."""
    env = cluster.env
    rx = FlowReceiver(cluster.nodes[1], nbufs=8, buf_bytes=8192)
    tx_a = sender_cls(cluster.nodes[0], rx)
    tx_b = sender_cls(cluster.nodes[0], rx)
    pa = env.process(tx_a.stream(30, 128))
    pb = env.process(tx_b.stream(50, 128))
    env.run_until_event(pa)
    env.run_until_event(pb)
    assert rx.delivered == 80
    assert pa.value > 0 and pb.value > 0
