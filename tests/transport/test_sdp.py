"""Tests for BSDP, ZSDP and AZ-SDP."""

import pytest

from repro.net import Cluster, NetworkParams
from repro.transport import (
    AzSdpEndpoint,
    BufferedSdpEndpoint,
    ZeroCopySdpEndpoint,
)


def make_pair(endpoint_cls, seed=0, **conn_kw):
    cluster = Cluster(n_nodes=2, params=NetworkParams.infiniband(), seed=seed)
    server = endpoint_cls(cluster.nodes[0])
    client = endpoint_cls(cluster.nodes[1])
    listener = server.listen(5000)
    return cluster, server, client, listener


def echo_roundtrip(endpoint_cls, size):
    cluster, server, client, listener = make_pair(endpoint_cls)
    result = {}

    def server_side(env):
        conn = yield listener.accept()
        msg = yield conn.recv()
        result["got"] = msg.payload
        yield conn.send("ack", size=16)

    def client_side(env):
        conn = yield client.connect(0, port=5000)
        t0 = env.now
        yield conn.send({"data": size}, size=size)
        msg = yield conn.recv()
        result["ack"] = msg.payload
        result["rtt"] = env.now - t0

    cluster.env.process(server_side(cluster.env))
    cluster.env.process(client_side(cluster.env))
    cluster.env.run()
    return result


@pytest.mark.parametrize("endpoint_cls", [
    BufferedSdpEndpoint, ZeroCopySdpEndpoint, AzSdpEndpoint])
@pytest.mark.parametrize("size", [1, 1024, 64 * 1024])
def test_echo_roundtrip_all_variants(endpoint_cls, size):
    result = echo_roundtrip(endpoint_cls, size)
    assert result["got"] == {"data": size}
    assert result["ack"] == "ack"
    assert result["rtt"] > 0


class TestBufferedSdp:
    def test_large_message_split_into_chunks(self):
        cluster, server, client, listener = make_pair(BufferedSdpEndpoint)

        def server_side(env):
            conn = yield listener.accept()
            msg = yield conn.recv()
            return msg

        def client_side(env):
            conn = yield client.connect(0, port=5000)
            yield conn.send("big", size=40_000)  # > 4 chunks of 8KB

        sp = cluster.env.process(server_side(cluster.env))
        cluster.env.process(client_side(cluster.env))
        cluster.env.run()
        assert sp.value.payload == "big"
        assert sp.value.size == 40_000

    def test_credit_exhaustion_blocks_sender(self):
        """With no receiver draining, the sender stalls after credits."""
        cluster, server, client, listener = make_pair(BufferedSdpEndpoint)
        progress = []

        def server_side(env):
            conn = yield listener.accept()
            # never calls recv -> credits are never returned
            yield env.timeout(1e9)

        def client_side(env):
            conn = yield client.connect(0, port=5000)
            for i in range(30):  # default credits = 16
                yield conn.send(i, size=100)
                progress.append(i)

        cluster.env.process(server_side(cluster.env))
        cluster.env.process(client_side(cluster.env))
        cluster.env.run(until=1e6)
        assert len(progress) == 16

    def test_credits_recycle_through_receiver(self):
        cluster, server, client, listener = make_pair(BufferedSdpEndpoint)

        def server_side(env):
            conn = yield listener.accept()
            got = []
            for _ in range(30):
                msg = yield conn.recv()
                got.append(msg.payload)
            return got

        def client_side(env):
            conn = yield client.connect(0, port=5000)
            for i in range(30):
                yield conn.send(i, size=100)

        sp = cluster.env.process(server_side(cluster.env))
        cluster.env.process(client_side(cluster.env))
        cluster.env.run()
        assert sp.value == list(range(30))


class TestZeroCopySdp:
    def test_send_blocks_until_receiver_pulls(self):
        cluster, server, client, listener = make_pair(ZeroCopySdpEndpoint)
        times = {}

        def server_side(env):
            conn = yield listener.accept()
            yield env.timeout(300.0)  # delay before recv
            msg = yield conn.recv()
            times["recv_at"] = env.now

        def client_side(env):
            conn = yield client.connect(0, port=5000)
            t0 = env.now
            yield conn.send("x", size=4096)
            times["send_done"] = env.now

        cluster.env.process(server_side(cluster.env))
        cluster.env.process(client_side(cluster.env))
        cluster.env.run()
        # Synchronous zero-copy: send cannot complete before the pull.
        assert times["send_done"] >= 300.0


class TestAzSdp:
    def test_send_returns_before_transfer_completes(self):
        cluster, server, client, listener = make_pair(AzSdpEndpoint)
        times = {}

        def server_side(env):
            conn = yield listener.accept()
            yield env.timeout(300.0)
            msg = yield conn.recv()
            times["recv_at"] = env.now

        def client_side(env):
            conn = yield client.connect(0, port=5000)
            yield conn.send("x", size=4096, buf="b0")
            times["send_done"] = env.now

        cluster.env.process(server_side(cluster.env))
        cluster.env.process(client_side(cluster.env))
        cluster.env.run()
        # Asynchronous: send returns as soon as the buffer is protected.
        assert times["send_done"] < 100.0

    def test_touching_inflight_buffer_faults_and_blocks(self):
        cluster, server, client, listener = make_pair(AzSdpEndpoint)
        times = {}

        def server_side(env):
            conn = yield listener.accept()
            yield env.timeout(500.0)
            yield conn.recv()

        def client_side(env):
            conn = yield client.connect(0, port=5000)
            yield conn.send("x", size=4096, buf="B")
            t0 = env.now
            yield conn.touch("B")  # in flight: must fault + wait
            times["touch_wait"] = env.now - t0
            times["faults"] = conn.page_faults

        cluster.env.process(server_side(cluster.env))
        cluster.env.process(client_side(cluster.env))
        cluster.env.run()
        assert times["touch_wait"] > 400.0
        assert times["faults"] == 1

    def test_touch_of_idle_buffer_is_free(self):
        cluster, server, client, listener = make_pair(AzSdpEndpoint)

        def server_side(env):
            conn = yield listener.accept()
            yield conn.recv()

        def client_side(env):
            conn = yield client.connect(0, port=5000)
            yield conn.send("x", size=64, buf="B")
            # let the transfer finish
            yield env.timeout(10_000.0)
            t0 = env.now
            yield conn.touch("B")
            return env.now - t0, conn.page_faults

        cluster.env.process(server_side(cluster.env))
        p = cluster.env.process(client_side(cluster.env))
        cluster.env.run()
        wait, faults = p.value
        assert wait == 0.0
        assert faults == 0

    def test_distinct_buffers_overlap(self):
        """Sending from many buffers costs far less than N blocking RTTs."""
        n = 8
        size = 64 * 1024

        def run(endpoint_cls, bufs):
            cluster, server, client, listener = make_pair(endpoint_cls)

            def server_side(env):
                conn = yield listener.accept()
                for _ in range(n):
                    yield conn.recv()

            def client_side(env):
                conn = yield client.connect(0, port=5000)
                t0 = env.now
                for i in range(n):
                    kw = {"buf": f"b{i}"} if bufs else {}
                    yield conn.send(i, size=size, **kw)
                if bufs:
                    yield conn.drain()
                return env.now - t0

            cluster.env.process(server_side(cluster.env))
            p = cluster.env.process(client_side(cluster.env))
            cluster.env.run()
            return p.value

        t_async = run(AzSdpEndpoint, bufs=True)
        t_sync = run(ZeroCopySdpEndpoint, bufs=False)
        assert t_async < t_sync
