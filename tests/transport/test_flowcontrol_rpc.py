"""Tests for flow-control micro-models and the RPC helper."""

import pytest

from repro.errors import ConfigError
from repro.net import Cluster, NetworkParams
from repro.transport import (
    CreditFlowSender,
    FlowReceiver,
    PacketizedFlowSender,
    RpcClient,
    RpcServer,
    TcpEndpoint,
)


@pytest.fixture
def cluster():
    return Cluster(n_nodes=2, params=NetworkParams.infiniband(), seed=0)


class TestFlowControl:
    def run_stream(self, cluster, sender_cls, n, size, nbufs=16):
        rx = FlowReceiver(cluster.nodes[1], nbufs=nbufs, buf_bytes=8192)
        tx = sender_cls(cluster.nodes[0], rx)
        p = cluster.env.process(tx.stream(n, size))
        cluster.env.run_until_event(p)
        return p.value, rx

    def test_credit_stream_delivers_all(self, cluster):
        bw, rx = self.run_stream(cluster, CreditFlowSender, 100, 512)
        assert rx.delivered == 100
        assert rx.delivered_bytes == 100 * 512
        assert bw > 0

    def test_packetized_stream_delivers_all(self, cluster):
        bw, rx = self.run_stream(cluster, PacketizedFlowSender, 100, 512)
        assert rx.delivered == 100
        assert bw > 0

    def test_packetized_beats_credit_for_tiny_messages(self):
        """The paper's §6 claim: ~order of magnitude for small messages."""
        results = {}
        for cls in (CreditFlowSender, PacketizedFlowSender):
            c = Cluster(n_nodes=2, params=NetworkParams.infiniband(), seed=0)
            rx = FlowReceiver(c.nodes[1], nbufs=8, buf_bytes=8192)
            tx = cls(c.nodes[0], rx)
            p = c.env.process(tx.stream(400, 64))
            c.env.run_until_event(p)
            results[cls.__name__] = p.value
        ratio = (results["PacketizedFlowSender"]
                 / results["CreditFlowSender"])
        assert ratio > 2.0

    def test_similar_for_buffer_sized_messages(self):
        """At msg == buffer size there is nothing to pack: schemes converge."""
        results = {}
        for cls in (CreditFlowSender, PacketizedFlowSender):
            c = Cluster(n_nodes=2, params=NetworkParams.infiniband(), seed=0)
            rx = FlowReceiver(c.nodes[1], nbufs=8, buf_bytes=8192)
            tx = cls(c.nodes[0], rx)
            p = c.env.process(tx.stream(100, 8192))
            c.env.run_until_event(p)
            results[cls.__name__] = p.value
        ratio = (results["PacketizedFlowSender"]
                 / results["CreditFlowSender"])
        assert 0.5 < ratio < 2.0

    def test_message_larger_than_buffer_rejected(self, cluster):
        rx = FlowReceiver(cluster.nodes[1], nbufs=4, buf_bytes=1024)
        tx = CreditFlowSender(cluster.nodes[0], rx)
        gen = tx.stream(1, 2048)
        with pytest.raises(ConfigError):
            cluster.env.run_until_event(cluster.env.process(gen))

    def test_bad_receiver_config(self, cluster):
        with pytest.raises(ConfigError):
            FlowReceiver(cluster.nodes[1], nbufs=0)


class TestRpc:
    def test_call_roundtrip(self, cluster):
        server_ep = TcpEndpoint(cluster.nodes[0])
        client_ep = TcpEndpoint(cluster.nodes[1])

        def handler(req):
            return {"echo": req["x"] * 2}, 32, 1.0

        RpcServer(server_ep, port=99, handler=handler).start()
        client = RpcClient(client_ep)

        def app(env):
            chan = yield client.open(0, port=99)
            r1 = yield chan.call({"x": 21}, size=16)
            r2 = yield chan.call({"x": 5}, size=16)
            return r1, r2, chan.calls

        p = cluster.env.process(app(cluster.env))
        cluster.env.run()
        r1, r2, calls = p.value
        assert r1 == {"echo": 42}
        assert r2 == {"echo": 10}
        assert calls == 2

    def test_multiple_clients_one_server(self, cluster):
        c = Cluster(n_nodes=4, params=NetworkParams.infiniband(), seed=0)
        server_ep = TcpEndpoint(c.nodes[0])

        def handler(req):
            return req + 1, 8, 0.5

        server = RpcServer(server_ep, port=7, handler=handler)
        server.start()
        answers = []

        def app(env, node, val):
            client = RpcClient(TcpEndpoint(node))
            chan = yield client.open(0, port=7)
            resp = yield chan.call(val, size=8)
            answers.append(resp)

        for i, node in enumerate(c.nodes[1:]):
            c.env.process(app(c.env, node, i * 10))
        c.env.run()
        assert sorted(answers) == [1, 11, 21]
        assert server.requests_served == 3

    def test_server_double_start_rejected(self, cluster):
        from repro.errors import TransportError
        ep = TcpEndpoint(cluster.nodes[0])
        server = RpcServer(ep, port=1, handler=lambda r: (r, 0, 0.0))
        server.start()
        with pytest.raises(TransportError):
            server.start()

    def test_server_under_load_is_slow(self):
        """RPC latency inflates when the server node is CPU-saturated."""

        def measure(load):
            c = Cluster(n_nodes=2, params=NetworkParams.infiniband(), seed=0)
            c.nodes[0].cpu.set_background(load)
            server_ep = TcpEndpoint(c.nodes[0])
            RpcServer(server_ep, port=9,
                      handler=lambda r: (r, 8, 5.0)).start()
            client = RpcClient(TcpEndpoint(c.nodes[1]))

            def app(env):
                chan = yield client.open(0, port=9)
                t0 = env.now
                yield chan.call("ping", size=8)
                return env.now - t0

            p = c.env.process(app(c.env))
            c.env.run()
            return p.value

        assert measure(30) > 3 * measure(0)
