"""Edge cases for the transport layer and lock-word encodings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Cluster
from repro.dlm.ncosed import pack, unpack
from repro.errors import LockError
from repro.transport import (
    AzSdpEndpoint,
    BufferedSdpEndpoint,
    TcpEndpoint,
    ZeroCopySdpEndpoint,
)

ALL_ENDPOINTS = [TcpEndpoint, BufferedSdpEndpoint, ZeroCopySdpEndpoint,
                 AzSdpEndpoint]


class TestWordEncoding:
    @given(tail=st.integers(0, 2**32 - 1), count=st.integers(0, 2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_pack_unpack_roundtrip(self, tail, count):
        assert unpack(pack(tail, count)) == (tail, count)

    def test_out_of_range_rejected(self):
        with pytest.raises(LockError):
            pack(2**32, 0)
        with pytest.raises(LockError):
            pack(0, -1)

    def test_fields_do_not_bleed(self):
        word = pack(1, 0)
        tail, count = unpack(word - 1)  # borrow across the boundary
        assert tail == 0 and count == 2**32 - 1


@pytest.mark.parametrize("endpoint_cls", ALL_ENDPOINTS)
class TestZeroAndOddSizes:
    def test_zero_byte_message(self, endpoint_cls):
        cluster = Cluster(n_nodes=2, seed=0)
        server = endpoint_cls(cluster.nodes[0])
        client = endpoint_cls(cluster.nodes[1])
        listener = server.listen(9)

        def rx(env):
            conn = yield listener.accept()
            msg = yield conn.recv()
            return msg.payload, msg.size

        def tx(env):
            conn = yield client.connect(0, port=9)
            yield conn.send("signal", size=0)

        p = cluster.env.process(rx(cluster.env))
        cluster.env.process(tx(cluster.env))
        cluster.env.run()
        assert p.value == ("signal", 0)

    def test_many_small_then_one_huge(self, endpoint_cls):
        """Mixed sizes on one connection arrive in order."""
        cluster = Cluster(n_nodes=2, seed=0)
        server = endpoint_cls(cluster.nodes[0])
        client = endpoint_cls(cluster.nodes[1])
        listener = server.listen(9)
        sizes = [1, 7, 100_000, 3]

        def rx(env):
            conn = yield listener.accept()
            got = []
            for _ in sizes:
                msg = yield conn.recv()
                got.append((msg.payload, msg.size))
            return got

        def tx(env):
            conn = yield client.connect(0, port=9)
            for i, size in enumerate(sizes):
                yield conn.send(i, size=size)

        p = cluster.env.process(rx(cluster.env))
        cluster.env.process(tx(cluster.env))
        cluster.env.run()
        assert p.value == [(i, s) for i, s in enumerate(sizes)]

    def test_two_connections_same_pair_isolated(self, endpoint_cls):
        cluster = Cluster(n_nodes=2, seed=0)
        server = endpoint_cls(cluster.nodes[0])
        client = endpoint_cls(cluster.nodes[1])
        listener = server.listen(9)
        results = {}

        def rx(env):
            c1 = yield listener.accept()
            c2 = yield listener.accept()
            m1 = yield c1.recv()
            m2 = yield c2.recv()
            results["first"] = m1.payload
            results["second"] = m2.payload

        def sender(env, conn, payload):
            yield conn.send(payload, size=10)

        def tx(env):
            c1 = yield client.connect(0, port=9)
            c2 = yield client.connect(0, port=9)
            # concurrent senders: a synchronous transport (ZSDP) blocks
            # each send until its receiver pulls, so the two sends must
            # not share one process
            yield env.all_of([
                env.process(sender(env, c2, "on-conn-2")),
                env.process(sender(env, c1, "on-conn-1")),
            ])

        cluster.env.process(rx(cluster.env))
        cluster.env.process(tx(cluster.env))
        cluster.env.run()
        assert results == {"first": "on-conn-1", "second": "on-conn-2"}
