"""Tests for the emulated TCP/IP socket transport."""

import pytest

from repro.errors import TransportError
from repro.net import Cluster, NetworkParams
from repro.transport import TcpEndpoint


@pytest.fixture
def cluster():
    return Cluster(n_nodes=3, params=NetworkParams.infiniband(), seed=0)


def setup_pair(cluster, port=80):
    server = TcpEndpoint(cluster.nodes[0])
    client = TcpEndpoint(cluster.nodes[1])
    listener = server.listen(port)
    return server, client, listener


def test_connect_accept_roundtrip(cluster):
    server, client, listener = setup_pair(cluster)
    result = {}

    def server_side(env):
        conn = yield listener.accept()
        msg = yield conn.recv()
        result["server_got"] = msg.payload
        yield conn.send({"reply": True}, size=64)

    def client_side(env):
        conn = yield client.connect(cluster.nodes[0].id, port=80)
        yield conn.send({"hello": 1}, size=128)
        msg = yield conn.recv()
        result["client_got"] = msg.payload

    cluster.env.process(server_side(cluster.env))
    cluster.env.process(client_side(cluster.env))
    cluster.env.run()
    assert result == {"server_got": {"hello": 1},
                      "client_got": {"reply": True}}


def test_connect_refused_without_listener(cluster):
    TcpEndpoint(cluster.nodes[0])  # server stack exists, nothing listening
    client = TcpEndpoint(cluster.nodes[1])
    errors = []

    def client_side(env):
        try:
            yield client.connect(cluster.nodes[0].id, port=9999)
        except TransportError as exc:
            errors.append(str(exc))

    cluster.env.process(client_side(cluster.env))
    with pytest.raises(TransportError, match="connection refused"):
        cluster.env.run()


def test_double_bind_rejected(cluster):
    server = TcpEndpoint(cluster.nodes[0])
    server.listen(80)
    with pytest.raises(TransportError):
        server.listen(80)


def test_one_endpoint_per_node(cluster):
    TcpEndpoint(cluster.nodes[0])
    with pytest.raises(TransportError):
        TcpEndpoint(cluster.nodes[0])


def test_endpoint_of_lookup(cluster):
    ep = TcpEndpoint(cluster.nodes[0])
    assert TcpEndpoint.of(cluster.nodes[0]) is ep
    with pytest.raises(TransportError):
        TcpEndpoint.of(cluster.nodes[1])


def test_latency_inflates_with_cpu_load(cluster):
    """Socket RTT must grow when the server node CPU is saturated."""

    def measure(load):
        c = Cluster(n_nodes=2, params=NetworkParams.infiniband(), seed=0)
        server = TcpEndpoint(c.nodes[0])
        client = TcpEndpoint(c.nodes[1])
        listener = server.listen(80)
        c.nodes[0].cpu.set_background(load)

        def server_side(env):
            conn = yield listener.accept()
            msg = yield conn.recv()
            yield conn.send("pong", size=msg.size)

        def client_side(env):
            conn = yield client.connect(0, port=80)
            t0 = env.now
            yield conn.send("ping", size=1024)
            yield conn.recv()
            return env.now - t0

        c.env.process(server_side(c.env))
        p = c.env.process(client_side(c.env))
        c.env.run()
        return p.value

    idle = measure(0)
    loaded = measure(40)
    assert loaded > 3 * idle


def test_send_returns_before_delivery(cluster):
    """Buffered semantics: send() returns without waiting for the peer."""
    server, client, listener = setup_pair(cluster)
    times = {}

    def server_side(env):
        conn = yield listener.accept()
        yield env.timeout(500.0)  # peer is slow to call recv
        msg = yield conn.recv()
        times["recv_done"] = env.now

    def client_side(env):
        conn = yield client.connect(0, port=80)
        t0 = env.now
        yield conn.send("x", size=100)
        times["send_done"] = env.now - t0

    cluster.env.process(server_side(cluster.env))
    cluster.env.process(client_side(cluster.env))
    cluster.env.run()
    assert times["send_done"] < 100.0
    assert times["recv_done"] >= 500.0


def test_fifo_message_order(cluster):
    server, client, listener = setup_pair(cluster)

    def server_side(env):
        conn = yield listener.accept()
        got = []
        for _ in range(5):
            msg = yield conn.recv()
            got.append(msg.payload)
        return got

    def client_side(env):
        conn = yield client.connect(0, port=80)
        for i in range(5):
            yield conn.send(i, size=64)

    sp = cluster.env.process(server_side(cluster.env))
    cluster.env.process(client_side(cluster.env))
    cluster.env.run()
    assert sp.value == [0, 1, 2, 3, 4]


def test_closed_connection_rejects_send(cluster):
    server, client, listener = setup_pair(cluster)

    def client_side(env):
        conn = yield client.connect(0, port=80)
        conn.close()
        try:
            conn.send("x", size=1)
        except TransportError:
            return "rejected"

    def server_side(env):
        yield listener.accept()

    cluster.env.process(server_side(cluster.env))
    p = cluster.env.process(client_side(cluster.env))
    cluster.env.run()
    assert p.value == "rejected"


def test_tx_accounting(cluster):
    server, client, listener = setup_pair(cluster)

    def server_side(env):
        conn = yield listener.accept()
        yield conn.recv()

    def client_side(env):
        conn = yield client.connect(0, port=80)
        yield conn.send("x", size=300)
        return conn

    cluster.env.process(server_side(cluster.env))
    p = cluster.env.process(client_side(cluster.env))
    cluster.env.run()
    assert p.value.tx_messages == 1
    assert p.value.tx_bytes == 300
