"""Retry-backoff jitter: drawn from the environment's seeded
``rpc-jitter`` stream, so retry storms decorrelate while same-seed
replays stay byte-identical — and a jitter-free call stays on the exact
legacy schedule, consuming zero randomness."""

import pytest

from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.net import Cluster
from repro.transport import RpcClient, RpcServer, TcpEndpoint

DROP_UNTIL = 4_000.0


def run_call(seed, jitter, retries=6):
    """One reliable call across a total-loss window; returns its fate."""
    cluster = Cluster(n_nodes=2, seed=seed)
    cluster.install_faults(
        FaultPlan().drop_messages(1.0, start=50.0, until=DROP_UNTIL))
    RpcServer(TcpEndpoint(cluster.nodes[0]), port=9,
              handler=lambda req: ({"echo": req}, 32, 1.0)).start()
    client = RpcClient(TcpEndpoint(cluster.nodes[1]))

    def app(env):
        chan = yield client.open(0, port=9)
        yield env.timeout(100.0)  # enter the loss window first
        reply = yield chan.call("x", size=64, timeout_us=300.0,
                                retries=retries, backoff=2.0,
                                jitter=jitter)
        return env.now, reply, chan

    p = cluster.env.process(app(cluster.env))
    cluster.env.run_until_event(p, limit=1e9)
    done_at, reply, chan = p.value
    return done_at, reply, chan, cluster


def open_chan(seed=0):
    cluster = Cluster(n_nodes=2, seed=seed)
    RpcServer(TcpEndpoint(cluster.nodes[0]), port=9,
              handler=lambda req: (req, 8, 0.5)).start()
    p = RpcClient(TcpEndpoint(cluster.nodes[1])).open(0, port=9)
    cluster.env.run_until_event(p)
    return cluster, p.value


class TestValidation:
    def test_negative_jitter_rejected(self):
        _cluster, chan = open_chan()
        with pytest.raises(ConfigError):
            chan.call("x", size=8, timeout_us=100.0, retries=1,
                      jitter=-0.1)

    def test_jitter_needs_seeded_env_rng(self):
        cluster, chan = open_chan()
        cluster.env.rng = None  # an env built outside Cluster has none
        with pytest.raises(ConfigError, match="seeded env.rng"):
            chan.call("x", size=8, timeout_us=100.0, retries=1,
                      jitter=0.5)


class TestDeterminism:
    def test_same_seed_replay_is_identical(self):
        a_t, a_reply, a_chan, _ = run_call(5, jitter=0.5)
        b_t, b_reply, b_chan, _ = run_call(5, jitter=0.5)
        assert a_t == b_t
        assert a_reply == b_reply == {"echo": "x"}
        assert a_chan.timeouts == b_chan.timeouts > 0

    def test_draws_depend_on_seed(self):
        times = {run_call(s, jitter=0.9)[0] for s in (5, 6, 8)}
        assert len(times) > 1  # different seeds, different schedules

    def test_jitter_perturbs_the_backoff_schedule(self):
        plain_t, _, plain_chan, _ = run_call(5, jitter=0.0)
        jit_t, _, jit_chan, _ = run_call(5, jitter=0.9)
        assert jit_t != plain_t
        assert plain_chan.timeouts > 0 and jit_chan.timeouts > 0

    def test_zero_jitter_consumes_no_randomness(self):
        # lazily drawn: the stream must not even be created, so adding
        # jitter=0.0 call sites cannot perturb any other component
        _t, _r, _chan, cluster = run_call(7, jitter=0.0)
        assert "rpc-jitter" not in cluster.rng._streams
        _t, _r, _chan, cluster = run_call(7, jitter=0.5)
        assert "rpc-jitter" in cluster.rng._streams
