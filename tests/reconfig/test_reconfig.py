"""Tests for dynamic reconfiguration and QoS."""

import pytest

from repro.errors import ConfigError
from repro.net import Cluster
from repro.monitor import KernelStats, RdmaSyncMonitor
from repro.reconfig import ReconfigManager, Service, burst_recovery_time


def build(n_nodes=4, seed=0):
    names = ["front"] + [f"s{i}" for i in range(n_nodes)]
    cluster = Cluster(names=names, seed=seed)
    return cluster, cluster.nodes[0], cluster.nodes[1:]


class TestService:
    def test_requests_complete(self):
        cluster, front, pool = build()
        svc = Service("web", pool[:2])
        for _ in range(10):
            svc.submit(100.0)
        cluster.env.run(until=50_000)
        assert svc.completed == 10
        assert svc.backlog == 0
        assert svc.mean_latency() > 0

    def test_burst_shows_up_as_threads(self):
        cluster, front, pool = build()
        svc = Service("web", pool[:1])
        for _ in range(20):
            svc.submit(5_000.0)
        cluster.env.run(until=100.0)
        assert pool[0].cpu.active_jobs == 20

    def test_add_remove_node(self):
        cluster, front, pool = build()
        svc = Service("web", pool[:1])
        svc.add_node(pool[1])
        assert len(svc.nodes) == 2
        svc.remove_node(pool[0])
        assert svc.nodes == [pool[1]]

    def test_empty_service_rejected(self):
        with pytest.raises(ConfigError):
            Service("x", [])

    def test_bad_min_nodes(self):
        cluster, front, pool = build()
        with pytest.raises(ConfigError):
            Service("x", pool[:1], min_nodes=5)


class TestManager:
    def build_manager(self, sensitivity=2.0, cooldown_us=5_000.0):
        cluster, front, pool = build(n_nodes=4)
        svc_a = Service("A", pool[:2])
        svc_b = Service("B", pool[2:])
        stats = {n.id: KernelStats(n) for n in pool}
        monitor = RdmaSyncMonitor(front, stats)
        manager = ReconfigManager(front, [svc_a, svc_b], monitor=monitor,
                                  check_every_us=1_000.0,
                                  sensitivity=sensitivity,
                                  cooldown_us=cooldown_us)
        return cluster, manager, svc_a, svc_b

    def test_migrates_toward_loaded_service(self):
        cluster, manager, svc_a, svc_b = self.build_manager()
        manager.start()
        for _ in range(200):
            svc_a.submit(2_000.0)
        cluster.env.run(until=100_000)
        assert len(svc_a.nodes) > 2
        assert manager.migrations

    def test_no_migration_when_balanced(self):
        cluster, manager, svc_a, svc_b = self.build_manager()
        manager.start()
        for _ in range(10):
            svc_a.submit(500.0)
            svc_b.submit(500.0)
        cluster.env.run(until=50_000)
        assert manager.migrations == []

    def test_min_nodes_respected(self):
        cluster, manager, svc_a, svc_b = self.build_manager()
        manager.start()
        for _ in range(500):
            svc_a.submit(5_000.0)
        cluster.env.run(until=300_000)
        assert len(svc_b.nodes) >= svc_b.min_nodes

    def test_cooldown_limits_thrash(self):
        cluster, manager, svc_a, svc_b = self.build_manager(
            cooldown_us=1e9)  # effectively one move per node ever
        manager.start()
        for _ in range(300):
            svc_a.submit(3_000.0)
        cluster.env.run(until=200_000)
        moved = [nid for _t, nid, _f, _to in manager.migrations]
        assert len(moved) == len(set(moved))  # no node moved twice

    def test_sensitivity_gate(self):
        """With huge sensitivity nothing ever migrates."""
        cluster, manager, svc_a, svc_b = self.build_manager(
            sensitivity=1e6)
        manager.start()
        for _ in range(100):
            svc_a.submit(2_000.0)
        cluster.env.run(until=100_000)
        assert manager.migrations == []

    def test_bad_sensitivity_rejected(self):
        cluster, front, pool = build()
        svc = Service("A", pool[:1])
        with pytest.raises(ConfigError):
            ReconfigManager(front, [svc], sensitivity=0.5)

    def test_double_start_rejected(self):
        cluster, manager, *_ = self.build_manager()
        manager.start()
        with pytest.raises(ConfigError):
            manager.start()

    def test_qos_steals_from_low_priority_first(self):
        cluster, front, pool = build(n_nodes=6)
        hot = Service("hot", pool[:2], priority=2)
        mid = Service("mid", pool[2:4], priority=2)
        low = Service("low", pool[4:], priority=1)
        stats = {n.id: KernelStats(n) for n in pool}
        monitor = RdmaSyncMonitor(front, stats)
        manager = ReconfigManager(front, [hot, mid, low], monitor=monitor,
                                  check_every_us=1_000.0,
                                  sensitivity=2.0, cooldown_us=5_000.0)
        manager.start()
        for _ in range(300):
            hot.submit(3_000.0)
        cluster.env.run(until=60_000)
        donors = [frm for _t, _n, frm, _to in manager.migrations]
        # the low-priority service is raided first (QoS); a same-priority
        # donor is only touched once "low" is down to its minimum share
        assert donors[0] == "low"
        if "mid" in donors:
            assert donors.index("mid") > donors.index("low")


class TestBurstExperiment:
    def test_fine_grained_detects_faster(self):
        # the burst must outlive the coarse monitoring period, otherwise
        # coarse-grained monitoring misses it entirely (which is itself
        # the paper's argument, but gives us no ratio to assert on)
        coarse = burst_recovery_time("socket-async",
                                     check_every_us=25_000.0,
                                     burst_requests=600)
        fine = burst_recovery_time("rdma-sync", check_every_us=1_000.0,
                                   burst_requests=600)
        assert fine["detection_us"] is not None
        assert coarse["detection_us"] is not None
        assert coarse["detection_us"] > 8 * fine["detection_us"]

    def test_coarse_monitoring_can_miss_short_bursts(self):
        """A burst shorter than the coarse period goes entirely unseen."""
        r = burst_recovery_time("socket-async", check_every_us=25_000.0,
                                burst_requests=120)
        assert r["detection_us"] is None

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError):
            burst_recovery_time("nope")
