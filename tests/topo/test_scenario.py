"""Packaged topo scenarios: oracles, kernels, CLI, sweep wiring."""

import json

import pytest

from repro.cli import main
from repro.verify import CHECKS, canonical_trace_sha, run_check
from repro.verify.suites import _kernel


class TestShardCheck:
    def test_registered_and_green(self):
        assert "shard" in CHECKS
        out = run_check("shard", seed=0)
        assert out["verdict"] == "ok"
        assert out["events"] > 0

    def test_three_kernel_trace_identity(self):
        from repro.topo.scenarios import shard_check

        shas = set()
        for kernel in ("fast", "heap", "slow"):
            with _kernel(kernel):
                obs = shard_check(0, 8)
            assert obs.clean
            shas.add(canonical_trace_sha(obs.trace_dict()))
        assert len(shas) == 1

    def test_exercises_bounce_and_migration(self):
        from repro.topo.scenarios import shard_check

        obs = shard_check(0, 8)
        assert obs.trace.select("shard.bounce")
        assert obs.trace.select("ddss.migrate")
        kinds = [e.fields["kind"]
                 for e in obs.trace.select("shard.rebalance")]
        assert "evict" in kinds and "restore" in kinds


class TestLabScenario:
    """The packaged datacenter-scale scenario (~3 s wall)."""

    @pytest.fixture(scope="class")
    def run(self):
        from repro.topo.scenarios import build_topo_scenario

        return build_topo_scenario(seed=0)

    def test_meets_scale_floor(self, run):
        obs, stats = run
        assert stats["nodes"] >= 100
        assert stats["racks"] >= 4
        assert stats["sessions"] >= 1_000_000

    def test_chaos_fault_survived_with_oracles_green(self, run):
        from repro.verify import ALL_ORACLES
        from repro.verify.trace import TraceView, replay

        obs, stats = run
        assert obs.clean
        view = TraceView.from_obs(obs).require_complete()
        oracles = [f() for f in ALL_ORACLES]
        assert replay(view, oracles) == []
        # the crash actually triggered failover work on every layer
        assert stats["evictions"] >= 1
        assert stats["lock_rehomes"] >= 1
        assert stats["ring_rebalances"] >= 1
        assert stats["units_moved"] >= 1
        assert stats["xrack_transfers"] > 0


class TestTopoCLI:
    def test_ls(self, capsys):
        assert main(["topo", "ls"]) == 0
        out = capsys.readouterr().out
        assert "lab" in out and "shard-check" in out

    def test_run_shard_check_json(self, tmp_path, capsys):
        path = tmp_path / "verdict.json"
        assert main(["topo", "run", "shard-check",
                     "--json", str(path)]) == 0
        assert "verdict=ok" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert doc["verdict"] == "ok"
        assert doc["sanitizers"] == []

    def test_bench_deterministic_and_gated(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["topo", "bench", "--out", str(a),
                     "--no-archive"]) == 0
        assert main(["topo", "bench", "--out", str(b), "--no-archive",
                     "--baseline", str(a)]) == 0
        assert a.read_text() == b.read_text()
        out = capsys.readouterr().out
        assert "regression gate passed" in out
        doc = json.loads(a.read_text())
        res = doc["results"]
        assert res["verb_latency"]["cross_rack_us"] > \
            res["verb_latency"]["intra_rack_us"]
        assert res["lock_throughput"]["speedup"] > 1.0

    def test_bench_gate_fails_on_regression(self, tmp_path, capsys):
        from repro.bench.topo import check_topo_regression, run_topo_suite

        report = run_topo_suite(seed=0)
        inflated = json.loads(json.dumps(report))
        inflated["results"]["lock_throughput"]["sharded_ops_per_s"] *= 2
        failures = check_topo_regression(report, inflated)
        assert failures and "sharded_ops_per_s" in failures[0]
        assert check_topo_regression(report, None) == []


class TestLabSweep:
    def test_topo16_packaged(self):
        from repro.lab.scenarios import SWEEPS, packaged_sweep

        assert "topo16" in SWEEPS
        sweep = packaged_sweep("topo16")
        assert sweep.grid["racks"] == [2, 4]
        assert sweep.grid["oversub"] == [1.0, 4.0]

    def test_topo_point_runs(self):
        from repro.lab.scenarios import topo_point

        r = topo_point(racks=2, oversub=1.0, seed=0)
        assert r["xrack_transfers"] > 0 and r["sim_now_us"] > 0
