"""Rack/spine topology: construction, latency, contention, identity."""

import pytest

from repro.errors import ConfigError
from repro.net import Cluster
from repro.topo import TopoCluster
from repro.topo.scenarios import measure_verb_latency, topo_lab


class TestConstruction:
    def test_empty_names_list_raises(self):
        with pytest.raises(ConfigError):
            Cluster(names=[])

    def test_bad_grid_raises(self):
        with pytest.raises(ConfigError):
            TopoCluster(racks=0, hosts_per_rack=4)
        with pytest.raises(ConfigError):
            TopoCluster(racks=2, hosts_per_rack=0)
        with pytest.raises(ConfigError):
            TopoCluster(racks=2, hosts_per_rack=2, oversub=0.5)
        with pytest.raises(ConfigError):
            TopoCluster(racks=2, hosts_per_rack=2, spines=0)
        with pytest.raises(ConfigError):
            TopoCluster(racks=2, hosts_per_rack=2,
                        spine_latency_us=-1.0)

    def test_rack_major_node_layout(self):
        cl = TopoCluster(racks=3, hosts_per_rack=4)
        assert len(cl.nodes) == 12
        assert cl.rack_of(0) == 0 and cl.rack_of(4) == 1
        assert [n.id for n in cl.rack_nodes(2)] == [8, 9, 10, 11]
        with pytest.raises(ConfigError):
            cl.rack_nodes(3)

    def test_uplink_bandwidth_scales_with_oversub(self):
        flat = TopoCluster(racks=2, hosts_per_rack=8, oversub=1.0)
        thin = TopoCluster(racks=2, hosts_per_rack=8, oversub=4.0)
        assert thin.fabric.uplink_bpus == pytest.approx(
            flat.fabric.uplink_bpus / 4.0)


class TestLatency:
    def test_cross_rack_slower_than_intra(self):
        r = measure_verb_latency(seed=0)
        assert r["cross_rack_us"] > r["intra_rack_us"]

    def test_spine_latency_raises_cross_rack_only(self):
        base = measure_verb_latency(seed=0)
        far = measure_verb_latency(seed=0, oversub=1.0)
        assert far["intra_rack_us"] == base["intra_rack_us"]


class TestContention:
    def test_oversubscription_stretches_completion(self):
        fat = topo_lab(racks=2, oversub=1.0, seed=0)
        thin = topo_lab(racks=2, oversub=4.0, seed=0)
        assert thin["sim_now_us"] > fat["sim_now_us"]
        # same offered cross-rack load either way
        assert thin["xrack_bytes"] == fat["xrack_bytes"]
        assert thin["xrack_transfers"] == fat["xrack_transfers"]

    def test_xrack_counters_and_trace_events(self):
        cl = TopoCluster(racks=2, hosts_per_rack=2, oversub=2.0)
        obs = cl.observe()
        env = cl.env

        def blast():
            yield cl.fabric.transfer(0, 2, 4096)  # cross-rack
            yield cl.fabric.transfer(0, 1, 4096)  # intra-rack

        env.process(blast(), name="blast")
        env.run()
        assert cl.fabric.xrack_transfers == 1
        assert cl.fabric.xrack_bytes == 4096
        evs = obs.trace.select("topo.xrack")
        assert len(evs) == 1
        assert evs[0].fields["srack"] == 0
        assert evs[0].fields["drack"] == 1
        assert evs[0].fields["nbytes"] == 4096


class TestFlatIdentity:
    """A single rack at 1:1 oversubscription is byte-identical to the
    flat cluster, running the full sharded stack on top."""

    @staticmethod
    def _drive(cluster):
        from repro.dlm import LockMode
        from repro.shard import ShardedDDSS, ShardedNCoSEDManager
        from repro.verify import canonical_trace_sha

        obs = cluster.observe(sanitize=True, strict=False)
        env = cluster.env
        nodes = cluster.nodes
        ddss = ShardedDDSS(cluster, segment_bytes=64 * 1024)
        mgr = ShardedNCoSEDManager(cluster, n_locks=16)
        keys = []

        def setup():
            cli = ddss.client(nodes[0])
            for i in range(6):
                k = yield cli.allocate(64)
                keys.append(k)
                yield cli.put(k, bytes([i]) * 64)

        env.process(setup(), name="setup")
        env.run()

        def actor(i):
            node = nodes[i % len(nodes)]
            cli = ddss.client(node)
            h = mgr.client(node)
            for r in range(2):
                k = keys[(i + r) % len(keys)]
                yield h.acquire(k % 16, LockMode.EXCLUSIVE)
                yield env.timeout(5.0)
                yield h.release(k % 16)
                yield cli.put(k, bytes([r]) * 64)
                _ = yield cli.get(k)

        for i in range(6):
            env.process(actor(i), name=f"a{i}")
        env.run()
        assert obs.clean
        return canonical_trace_sha(obs.trace_dict())

    def test_single_rack_matches_flat_cluster(self):
        flat = self._drive(Cluster(n_nodes=6, seed=3))
        topo = self._drive(TopoCluster(racks=1, hosts_per_rack=6,
                                       spines=1, oversub=1.0, seed=3))
        assert flat == topo
