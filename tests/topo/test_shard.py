"""Consistent-hash shard ring, ShardMap, and the bounce protocol."""

import json
import os
import subprocess
import sys

import pytest

from repro.errors import ConfigError
from repro.net import Cluster
from repro.shard import ShardMap, ShardRing, ShardedDDSS, \
    ShardedNCoSEDManager


class TestShardRing:
    def test_same_seed_same_ring(self):
        a = ShardRing([1, 2, 3, 4], seed=7, vnodes=8)
        b = ShardRing([4, 3, 2, 1], seed=7, vnodes=8)
        assert a.to_json() == b.to_json()
        assert all(a.owner(k) == b.owner(k) for k in range(200))

    def test_different_seed_different_placement(self):
        a = ShardRing([1, 2, 3, 4], seed=7)
        b = ShardRing([1, 2, 3, 4], seed=8)
        assert any(a.owner(k) != b.owner(k) for k in range(200))

    def test_cross_process_determinism(self):
        """The ring is a pure function of (members, seed, vnodes) with
        no dependence on process state like hash randomization."""
        prog = ("from repro.shard import ShardRing; import json; "
                "print(json.dumps(ShardRing([3, 9, 27, 81], seed=42, "
                "vnodes=16).to_json(), sort_keys=True))")
        env = dict(os.environ)
        docs = set()
        for htseed in ("0", "1", "random"):
            env["PYTHONHASHSEED"] = htseed
            out = subprocess.run([sys.executable, "-c", prog],
                                 capture_output=True, text=True,
                                 env=env, check=True)
            docs.add(out.stdout.strip())
        assert len(docs) == 1
        local = json.dumps(ShardRing([3, 9, 27, 81], seed=42,
                                     vnodes=16).to_json(),
                           sort_keys=True)
        assert docs == {local}

    def test_remove_moves_only_the_removed_members_keys(self):
        ring = ShardRing([0, 1, 2, 3, 4], seed=1, vnodes=16)
        before = {k: ring.owner(k) for k in range(300)}
        ring.remove(2)
        moved = [k for k in range(300) if ring.owner(k) != before[k]]
        assert moved  # node 2 owned something
        assert all(before[k] == 2 for k in moved)

    def test_config_errors(self):
        with pytest.raises(ConfigError):
            ShardRing([], seed=0)
        with pytest.raises(ConfigError):
            ShardRing([1], seed=0, vnodes=0)
        ring = ShardRing([1, 2], seed=0)
        with pytest.raises(ConfigError):
            ring.add(1)  # duplicate
        with pytest.raises(ConfigError):
            ring.remove(9)  # not a member
        ring.remove(2)
        with pytest.raises(ConfigError):
            ring.remove(1)  # last member
        with pytest.raises(ConfigError):
            ShardRing([1, 2], seed=0).owner(5, avoid=(1, 2))

    def test_avoid_reroutes_to_live_member(self):
        ring = ShardRing([1, 2, 3], seed=0)
        k = 11
        first = ring.owner(k)
        other = ring.owner(k, avoid=(first,))
        assert other != first and other in ring.members


class TestShardMap:
    def test_epoch_bumps_and_history(self):
        m = ShardMap(ShardRing([1, 2, 3], seed=0))
        assert m.epoch == 0 and len(m) == 3
        m.remove(2)
        m.add(2)
        assert m.epoch == 2
        assert [(e, kind, nid) for e, kind, nid in m.rebalances] == \
            [(1, "remove", 2), (2, "add", 2)]
        assert m.members == frozenset({1, 2, 3})


class TestShardedManagers:
    def test_lock_homes_spread_over_members(self):
        cluster = Cluster(n_nodes=6, seed=0)
        mgr = ShardedNCoSEDManager(cluster, n_locks=64)
        homes = {mgr.home_node(i).id for i in range(64)}
        assert len(homes) > 1

    def test_directory_serving_spread_over_members(self):
        cluster = Cluster(n_nodes=6, seed=0)
        ddss = ShardedDDSS(cluster, segment_bytes=64 * 1024)
        owners = {ddss.dir_node(k) for k in range(64)}
        assert len(owners) > 1

    def test_stale_dir_cache_bounces_to_new_owner(self):
        cluster = Cluster(n_nodes=5, seed=0)
        ddss = ShardedDDSS(cluster, segment_bytes=64 * 1024)
        obs = cluster.observe()
        env = cluster.env
        cli = ddss.client(cluster.nodes[0])
        state = {}

        def setup():
            k = yield cli.allocate(32)
            yield cli.lookup(k)  # warms the per-key directory cache
            state["key"] = k

        env.process(setup(), name="setup")
        env.run()
        key = state["key"]
        owner = ddss.dir_map.owner(key)
        assert cli._dir_cache[key] == owner
        ddss.dir_map.remove(owner)
        before = cli.stale_retries
        cli._meta_cache.pop(key)  # force the next lookup onto the wire

        def relookup():
            yield cli.lookup(key)

        env.process(relookup(), name="relookup")
        env.run()
        assert cli.stale_retries > before
        assert cli._dir_cache[key] == ddss.dir_map.owner(key)
        bounces = obs.trace.select("shard.bounce")
        assert bounces and bounces[-1].fields["key"] == key

    def test_detector_death_rehomes_ring_and_locks(self):
        from repro.dlm import LockMode

        cluster = Cluster(n_nodes=5, seed=0)
        obs = cluster.observe()
        mgr = ShardedNCoSEDManager(cluster, n_locks=32)
        env = cluster.env
        victim = next(n.id for n in cluster.nodes
                      if any(mgr.home_node(i).id == n.id
                             for i in range(32)))
        victim_locks = [i for i in range(32)
                        if mgr.home_node(i).id == victim]
        mgr._on_detector(victim, "dead")
        assert victim not in mgr.shard_map.members
        for lock_id in victim_locks:
            assert mgr.home_node(lock_id).id != victim
        evs = obs.trace.select("shard.rebalance")
        assert evs and evs[-1].fields["kind"] == "evict"
