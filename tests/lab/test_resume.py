"""Resume-after-kill, bounded retry, worker-crash recovery, timeouts."""

import os

import pytest

from repro.lab import (ResultStore, RetryPolicy, Runner, Sweep,
                       merge_tables, packaged_sweep)


class TestResume:
    def test_partial_store_only_missing_runs_execute(self, tmp_path):
        sweep = packaged_sweep("smoke8")
        full = ResultStore(str(tmp_path / "full"))
        Runner(sweep, full, workers=0).run()
        records = full.records()

        # pre-populate a partial store with 5 of the 8 records
        done = sorted(records, key=lambda r: r["run_id"])[:5]
        partial = ResultStore(str(tmp_path / "partial"))
        partial.write_sweep(sweep)
        for r in done:
            partial.append(r)

        runner = Runner(sweep, partial, workers=0)
        report = runner.run()
        assert report["skipped"] == 5
        assert report["completed"] == 3
        # journal shows exactly the 3 missing runs executed
        executed = {e["run_id"] for e in partial.journal()}
        missing = {r["run_id"] for r in records} - \
            {r["run_id"] for r in done}
        assert executed == missing

    def test_resumed_store_matches_uninterrupted_run(self, tmp_path):
        sweep = packaged_sweep("smoke8")
        full = ResultStore(str(tmp_path / "full"))
        Runner(sweep, full, workers=0).run()

        partial = ResultStore(str(tmp_path / "partial"))
        partial.write_sweep(sweep)
        for r in sorted(full.records(), key=lambda r: r["run_id"])[:4]:
            partial.append(r)
        Runner(sweep, partial, workers=2).run()

        assert partial.record_lines() == full.record_lines()
        a = [t.to_dict() for t in merge_tables(sweep, full)]
        b = [t.to_dict() for t in merge_tables(sweep, partial)]
        assert a == b

    def test_interrupt_drains_then_resume_completes(self, tmp_path):
        """A KeyboardInterrupt mid-sweep keeps completed records; a
        second invocation finishes only the remainder."""
        counter = str(tmp_path / "counter")
        sweep = Sweep(name="inter",
                      scenario="tests.lab.crashers:interruptor",
                      grid={"i": list(range(6))},
                      base={"after": 3, "counter": counter})
        store = ResultStore(str(tmp_path / "store"))
        runner = Runner(sweep, store, workers=0)
        report = runner.run()
        assert report["interrupted"]
        assert report["completed"] == 3
        assert len(store.completed_ids()) == 3

        os.remove(counter)  # only 3 runs remain: none reaches `after`
        report2 = Runner(sweep, store, workers=0).run()
        assert not report2["interrupted"]
        assert report2["skipped"] == 3
        assert len(store.completed_ids()) == 6


class TestRetry:
    def test_flaky_scenario_retried_serial(self, tmp_path):
        sentinel = str(tmp_path / "sentinel")
        sweep = Sweep(name="flaky", scenario="tests.lab.crashers:flaky",
                      base={"sentinel": sentinel})
        store = ResultStore(str(tmp_path / "store"))
        runner = Runner(sweep, store, workers=0,
                        retry=RetryPolicy(retries=2, base_s=0.01))
        report = runner.run()
        assert report["completed"] == 1
        assert report["failed"] == 0
        assert report["metrics"]["counters"]["lab.runs.retried"] == 1
        (entry,) = [e for e in store.journal() if "wall_s" in e]
        assert entry["attempts"] == 2

    def test_flaky_scenario_retried_in_pool(self, tmp_path):
        sentinel = str(tmp_path / "sentinel")
        sweep = Sweep(name="flaky", scenario="tests.lab.crashers:flaky",
                      base={"sentinel": sentinel})
        store = ResultStore(str(tmp_path / "store"))
        report = Runner(sweep, store, workers=2,
                        retry=RetryPolicy(retries=2, base_s=0.01)).run()
        assert report["completed"] == 1
        assert report["failed"] == 0

    def test_retry_budget_exhaustion_records_failure(self, tmp_path):
        sweep = Sweep(name="dead", scenario="tests.lab.crashers:flaky",
                      base={"sentinel": str(tmp_path / "never"),
                            "unknown_param": 1})  # TypeError every time
        store = ResultStore(str(tmp_path / "store"))
        report = Runner(sweep, store, workers=0,
                        retry=RetryPolicy(retries=1, base_s=0.01)).run()
        assert report["failed"] == 1
        assert report["completed"] == 0
        (failure,) = report["failures"]
        assert failure["attempts"] == 2
        assert "TypeError" in failure["error"]

    def test_worker_crash_rebuilds_pool_and_retries(self, tmp_path):
        """os._exit in a worker breaks the pool; the runner must charge
        an attempt, rebuild and converge."""
        sentinel = str(tmp_path / "sentinel")
        sweep = Sweep(name="crash",
                      scenario="tests.lab.crashers:crasher",
                      base={"sentinel": sentinel})
        store = ResultStore(str(tmp_path / "store"))
        runner = Runner(sweep, store, workers=2,
                        retry=RetryPolicy(retries=2, base_s=0.01))
        report = runner.run()
        assert report["completed"] == 1
        assert report["failed"] == 0
        assert store.records()[0]["result"] == {"survived": True}
        assert report["metrics"]["counters"]["lab.pool.rebuilds"] >= 1

    @pytest.mark.skipif(not hasattr(__import__("signal"), "SIGALRM"),
                        reason="needs SIGALRM")
    def test_per_run_timeout_fails_run(self, tmp_path):
        sweep = Sweep(name="slow", scenario="tests.lab.crashers:sleeper",
                      base={"sleep_s": 5.0})
        store = ResultStore(str(tmp_path / "store"))
        report = Runner(sweep, store, workers=0, timeout_s=1.0,
                        retry=RetryPolicy(retries=0)).run()
        assert report["failed"] == 1
        assert "TimeoutError" in report["failures"][0]["error"]
