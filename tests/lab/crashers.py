"""Deliberately misbehaving scenarios for the lab retry/crash tests.

These are importable by dotted name from pool workers (the ``tests``
package is on ``sys.path`` when pytest runs from the repo root).  Each
uses a caller-supplied sentinel path to misbehave only on the first
attempt, so a bounded retry must converge.
"""

import os
import time


def flaky(sentinel: str, seed: int = 0):
    """Raise on the first attempt, succeed afterwards."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("attempted\n")
        raise RuntimeError("first attempt always fails")
    return {"ok": True, "seed_seen": seed}


def crasher(sentinel: str, seed: int = 0):
    """Kill the worker process outright on the first attempt."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("attempted\n")
        os._exit(17)
    return {"survived": True}


def sleeper(sleep_s: float, seed: int = 0):
    """Exceed any per-run timeout shorter than ``sleep_s``."""
    time.sleep(sleep_s)
    return {"slept": sleep_s}


def interruptor(after: int, counter: str, i: int = 0, seed: int = 0):
    """Raise KeyboardInterrupt once ``after`` runs have completed."""
    n = 0
    if os.path.exists(counter):
        with open(counter) as fh:
            n = int(fh.read() or 0)
    if n >= after:
        raise KeyboardInterrupt()
    with open(counter, "w") as fh:
        fh.write(str(n + 1))
    return {"n": n}
