"""The ``repro lab`` CLI: ls, run, resume, show, error paths."""

import json
import os

from repro.cli import main
from repro.lab.scenarios import SWEEPS


class TestLabCli:
    def test_ls_lists_packaged_sweeps(self, capsys):
        assert main(["lab", "ls"]) == 0
        out = capsys.readouterr().out
        for name in SWEEPS:
            assert name in out

    def test_run_show_resume_cycle(self, tmp_path, capsys):
        root = str(tmp_path)
        assert main(["lab", "run", "smoke8", "--workers", "0",
                     "--store-root", root, "--no-progress",
                     "--no-tables"]) == 0
        out = capsys.readouterr().out
        assert "8 ran, 0 skipped, 0 failed" in out
        assert os.path.exists(os.path.join(root, "smoke8",
                                           "records.jsonl"))

        assert main(["lab", "resume", "smoke8", "--store-root", root,
                     "--no-progress", "--no-tables"]) == 0
        out = capsys.readouterr().out
        assert "0 ran, 8 skipped" in out

        assert main(["lab", "show", "smoke8",
                     "--store-root", root]) == 0
        out = capsys.readouterr().out
        assert "lab sweep: smoke8" in out
        assert "8/8 runs complete" in out

    def test_run_writes_report_json(self, tmp_path, capsys):
        root = str(tmp_path)
        report_path = str(tmp_path / "report.json")
        assert main(["lab", "run", "smoke8", "--store-root", root,
                     "--no-progress", "--no-tables",
                     "--report", report_path]) == 0
        report = json.loads(open(report_path).read())
        assert report["completed"] == 8
        assert report["metrics"]["counters"]["lab.runs.completed"] == 8

    def test_show_from_store_directory(self, tmp_path, capsys):
        root = str(tmp_path)
        assert main(["lab", "run", "smoke8", "--store-root", root,
                     "--no-progress", "--no-tables"]) == 0
        capsys.readouterr()
        store_dir = os.path.join(root, "smoke8")
        assert main(["lab", "show", store_dir]) == 0
        assert "lab sweep: smoke8" in capsys.readouterr().out

    def test_ls_reports_on_disk_state(self, tmp_path, capsys):
        root = str(tmp_path)
        main(["lab", "run", "smoke8", "--store-root", root,
              "--no-progress", "--no-tables"])
        capsys.readouterr()
        assert main(["lab", "ls", "--store-root", root]) == 0
        assert "[8/8 complete on disk]" in capsys.readouterr().out

    def test_unknown_sweep_fails(self, tmp_path, capsys):
        assert main(["lab", "run", "nope", "--store-root",
                     str(tmp_path), "--no-progress"]) == 2
        assert "unknown sweep" in capsys.readouterr().err

    def test_resume_without_store_fails(self, tmp_path, capsys):
        assert main(["lab", "resume", "smoke8", "--store-root",
                     str(tmp_path), "--no-progress"]) == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_show_empty_store_fails(self, tmp_path, capsys):
        assert main(["lab", "show", "smoke8",
                     "--store-root", str(tmp_path)]) == 1
        assert "no completed runs" in capsys.readouterr().err
