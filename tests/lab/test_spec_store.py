"""Specs, run-id hashing, seed derivation and the result store."""

import json
import os

import pytest

from repro.errors import ConfigError
from repro.lab import (ResultStore, RunSpec, Sweep, canonical_json,
                       record_for, resolve_dotted)
from repro.sim import spawn_child


class TestRunSpec:
    def test_run_id_is_content_hash(self):
        a = RunSpec("m:f", {"x": 1}, seed=0, repeat=0)
        b = RunSpec("m:f", {"x": 1}, seed=0, repeat=0)
        assert a.run_id == b.run_id
        assert a.run_id != RunSpec("m:f", {"x": 2}).run_id
        assert a.run_id != RunSpec("m:f", {"x": 1}, seed=1).run_id
        assert a.run_id != RunSpec("m:f", {"x": 1}, repeat=1).run_id

    def test_run_id_independent_of_param_insertion_order(self):
        a = RunSpec("m:f", {"x": 1, "y": 2})
        b = RunSpec("m:f", {"y": 2, "x": 1})
        assert a.run_id == b.run_id

    def test_effective_seed_repeat0_is_root(self):
        assert RunSpec("m:f", seed=7).effective_seed == 7

    def test_effective_seed_repeats_decorrelated(self):
        seeds = {RunSpec("m:f", seed=7, repeat=r).effective_seed
                 for r in range(10)}
        assert len(seeds) == 10
        assert RunSpec("m:f", seed=7, repeat=3).effective_seed == \
            spawn_child(7, 3)

    def test_roundtrip(self):
        spec = RunSpec("m:f", {"x": 1}, seed=2, repeat=3)
        assert RunSpec.from_dict(spec.to_dict()) == spec


class TestSpawnChild:
    def test_deterministic(self):
        assert spawn_child(1, 5) == spawn_child(1, 5)

    def test_neighbours_diverge(self):
        xs = [spawn_child(0, i) for i in range(100)]
        assert len(set(xs)) == 100
        # children differ from naive seed+i arithmetic in every case
        assert all(x != i for i, x in enumerate(xs))

    def test_seed_sensitivity(self):
        assert spawn_child(0, 1) != spawn_child(1, 1)


class TestSweep:
    def test_expand_grid_cross_product(self):
        sweep = Sweep(name="s", scenario="m:f",
                      grid={"a": [1, 2], "b": ["x", "y"]},
                      seeds=(0, 1), repeats=2)
        specs = sweep.expand()
        assert len(specs) == 2 * 2 * 2 * 2
        assert len({s.run_id for s in specs}) == len(specs)

    def test_base_params_merged(self):
        sweep = Sweep(name="s", scenario="m:f", grid={"a": [1]},
                      base={"c": 9})
        assert sweep.expand()[0].params == {"a": 1, "c": 9}

    def test_base_grid_overlap_rejected(self):
        with pytest.raises(ConfigError):
            Sweep(name="s", scenario="m:f", grid={"a": [1]},
                  base={"a": 2})

    def test_spec_hash_stable_roundtrip(self):
        sweep = Sweep(name="s", scenario="m:f", grid={"a": [1, 2]})
        clone = Sweep.from_dict(sweep.to_dict())
        assert clone.spec_hash() == sweep.spec_hash()

    def test_adding_grid_point_preserves_existing_ids(self):
        small = Sweep(name="s", scenario="m:f", grid={"a": [1, 2]})
        big = Sweep(name="s", scenario="m:f", grid={"a": [1, 2, 3]})
        small_ids = {s.run_id for s in small.expand()}
        big_ids = {s.run_id for s in big.expand()}
        assert small_ids < big_ids


class TestResolveDotted:
    def test_colon_and_dot_forms(self):
        assert resolve_dotted("repro.lab.scenarios:smoke") is \
            resolve_dotted("repro.lab.scenarios.smoke")

    @pytest.mark.parametrize("path", ["nope", "repro.lab:nope",
                                      "no.such.module:f"])
    def test_bad_paths_rejected(self, path):
        with pytest.raises(ConfigError):
            resolve_dotted(path)


class TestResultStore:
    def test_append_and_completed_ids(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        spec = RunSpec("m:f", {"x": 1})
        store.append(record_for(spec, {"v": 1}))
        assert store.completed_ids() == {spec.run_id}
        assert store.records()[0]["result"] == {"v": 1}

    def test_truncated_tail_line_skipped(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        spec = RunSpec("m:f", {"x": 1})
        store.append(record_for(spec, {"v": 1}))
        with open(os.path.join(store.path, store.RECORDS), "a") as fh:
            fh.write('{"run_id": "deadbeef", "resu')  # killed mid-write
        assert store.completed_ids() == {spec.run_id}

    def test_duplicate_run_last_write_wins(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        spec = RunSpec("m:f", {"x": 1})
        store.append(record_for(spec, {"v": 1}))
        store.append(record_for(spec, {"v": 2}))
        assert len(store.records()) == 1
        assert store.records()[0]["result"] == {"v": 2}

    def test_sweep_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        sweep = Sweep(name="s", scenario="m:f", grid={"a": [1]})
        store.write_sweep(sweep)
        assert store.has_sweep()
        assert store.load_sweep().spec_hash() == sweep.spec_hash()

    def test_memory_store(self):
        store = ResultStore(None)
        spec = RunSpec("m:f")
        store.append(record_for(spec, {}))
        assert store.completed_ids() == {spec.run_id}
        assert not store.has_sweep()

    def test_record_lines_are_canonical(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        spec = RunSpec("m:f", {"b": 2, "a": 1})
        store.append(record_for(spec, {"v": 1}))
        line = store.record_lines()[spec.run_id]
        assert line == canonical_json(json.loads(line))


class TestStoreCorruption:
    """Interior corruption must raise; only a torn tail is forgiven."""

    def _store_with(self, tmp_path, n=3):
        store = ResultStore(str(tmp_path / "s"))
        specs = [RunSpec("m:f", {"x": i}) for i in range(n)]
        for i, spec in enumerate(specs):
            store.append(record_for(spec, {"v": i}))
        return store, specs

    def test_interior_corruption_raises(self, tmp_path):
        store, _ = self._store_with(tmp_path)
        path = os.path.join(store.path, store.RECORDS)
        lines = open(path).read().splitlines()
        lines[1] = lines[1][:10] + "#corrupt#" + lines[1][10:]
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(ConfigError, match=r"corrupt record .*:2"):
            store.records()

    def test_truncated_final_line_forgiven(self, tmp_path):
        store, specs = self._store_with(tmp_path)
        path = os.path.join(store.path, store.RECORDS)
        with open(path, "a") as fh:
            fh.write('{"run_id": "deadbeef", "resu')  # killed mid-write
        assert store.completed_ids() == {s.run_id for s in specs}

    def test_torn_tail_before_trailing_whitespace_forgiven(self, tmp_path):
        store, specs = self._store_with(tmp_path)
        path = os.path.join(store.path, store.RECORDS)
        with open(path, "a") as fh:
            fh.write('{"run_id": "dead\n\n  \n')
        assert store.completed_ids() == {s.run_id for s in specs}

    def test_journal_interior_corruption_raises(self, tmp_path):
        store, specs = self._store_with(tmp_path)
        for s in specs:
            store.append_journal({"run_id": s.run_id, "wall_s": 0.1})
        path = os.path.join(store.path, store.JOURNAL)
        lines = open(path).read().splitlines()
        lines[0] = "not json at all"
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(ConfigError, match="corrupt record"):
            store.journal()
