"""Serial-vs-parallel determinism: the lab's core guarantee.

The same sweep executed with ``workers=0`` (in-process) and
``workers=4`` (process pool) must produce byte-identical per-run JSON
records and identical merged tables — parallelism is an execution
detail, never an experimental variable.
"""

from repro.lab import Runner, ResultStore, merge_tables, packaged_sweep


def _run(sweep, tmp_path, workers):
    store = ResultStore(str(tmp_path / f"w{workers}"))
    report = Runner(sweep, store, workers=workers).run()
    assert report["failed"] == 0
    assert report["completed"] == report["total"]
    return store


class TestDeterminism:
    def test_records_byte_identical_workers_0_vs_4(self, tmp_path):
        sweep = packaged_sweep("smoke8")
        serial = _run(sweep, tmp_path, 0)
        parallel = _run(sweep, tmp_path, 4)
        s_lines = serial.record_lines()
        p_lines = parallel.record_lines()
        assert set(s_lines) == set(p_lines)
        for run_id, line in s_lines.items():
            assert p_lines[run_id] == line

    def test_merged_tables_identical(self, tmp_path):
        sweep = packaged_sweep("smoke8")
        serial = _run(sweep, tmp_path, 0)
        parallel = _run(sweep, tmp_path, 4)
        s_tables = [t.to_dict() for t in merge_tables(sweep, serial)]
        p_tables = [t.to_dict() for t in merge_tables(sweep, parallel)]
        assert s_tables == p_tables

    def test_rerun_serial_is_stable(self, tmp_path):
        """Two independent serial runs serialize identically (no
        wall-clock or pid leakage into the records)."""
        sweep = packaged_sweep("smoke8")
        a = _run(sweep, tmp_path / "a", 0)
        b = _run(sweep, tmp_path / "b", 0)
        assert a.record_lines() == b.record_lines()

    def test_journal_is_separate_from_records(self, tmp_path):
        """Timing/attempts go to the journal, never the records."""
        sweep = packaged_sweep("smoke8")
        store = _run(sweep, tmp_path, 0)
        for line in store.record_lines().values():
            assert "wall_s" not in line
            assert "pid" not in line
        journal = store.journal()
        assert len(journal) == 8
        assert all("wall_s" in e for e in journal)
