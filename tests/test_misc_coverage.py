"""Cross-cutting tests: transport interop, params presets, determinism."""

import pytest

from repro.errors import ConfigError
from repro.net import Cluster, NetworkParams
from repro.dlm import LockMode, NCoSEDManager, cascade_latency
from repro.transport import (
    BufferedSdpEndpoint,
    RpcClient,
    RpcServer,
)


class TestNetworkParams:
    def test_presets_have_sane_relations(self):
        ib = NetworkParams.infiniband()
        gige = NetworkParams.tcp_gige()
        tengige = NetworkParams.tcp_10gige()
        assert ib.has_rdma and not gige.has_rdma and not tengige.has_rdma
        assert ib.wire_latency_us < tengige.wire_latency_us \
            < gige.wire_latency_us
        assert gige.bandwidth_bpus < ib.bandwidth_bpus
        # socket CPU tax exists on every preset
        for p in (ib, gige, tengige):
            assert p.sock_cpu_us(1024) > p.sock_cpu_us(0) > 0

    def test_with_override(self):
        ib = NetworkParams.infiniband()
        fat = ib.with_(bandwidth_bpus=2000.0, name="ib-qdr")
        assert fat.bandwidth_bpus == 2000.0
        assert fat.name == "ib-qdr"
        assert fat.wire_latency_us == ib.wire_latency_us
        assert ib.bandwidth_bpus == 900.0  # original untouched

    def test_validation(self):
        with pytest.raises(ConfigError):
            NetworkParams.infiniband().with_(bandwidth_bpus=0.0)
        with pytest.raises(ConfigError):
            NetworkParams.infiniband().with_(wire_latency_us=-1.0)

    def test_serialization_scales_linearly(self):
        ib = NetworkParams.infiniband()
        assert ib.serialization_us(9000) == pytest.approx(
            10 * ib.serialization_us(900))


class TestRpcOverSdp:
    """The RPC helper must work over any endpoint implementing the
    common interface — exercised here over buffered SDP."""

    def test_call_roundtrip_over_bsdp(self):
        cluster = Cluster(n_nodes=2, seed=0)
        server_ep = BufferedSdpEndpoint(cluster.nodes[0])
        client_ep = BufferedSdpEndpoint(cluster.nodes[1])
        RpcServer(server_ep, port=5,
                  handler=lambda req: ({"sq": req ** 2}, 16, 1.0)).start()
        client = RpcClient(client_ep)

        def app(env):
            chan = yield client.open(0, port=5)
            out = []
            for x in (3, 7):
                resp = yield chan.call(x, size=8)
                out.append(resp["sq"])
            return out

        p = cluster.env.process(app(cluster.env))
        cluster.env.run_until_event(p)
        assert p.value == [9, 49]

    def test_sdp_rpc_faster_than_tcp_rpc(self):
        from repro.transport import TcpEndpoint

        def rtt(endpoint_cls):
            cluster = Cluster(n_nodes=2, seed=0)
            server_ep = endpoint_cls(cluster.nodes[0])
            client_ep = endpoint_cls(cluster.nodes[1])
            RpcServer(server_ep, port=5,
                      handler=lambda r: (r, 2048, 1.0)).start()
            client = RpcClient(client_ep)

            def app(env):
                chan = yield client.open(0, port=5)
                yield chan.call("warm", size=2048)
                t0 = env.now
                yield chan.call("ping", size=2048)
                return env.now - t0

            p = cluster.env.process(app(cluster.env))
            cluster.env.run_until_event(p)
            return p.value

        # offloaded SDP beats the emulated host TCP stack
        assert rtt(BufferedSdpEndpoint) < rtt(TcpEndpoint)


class TestDeterminism:
    """Seeded simulations must replay bit-identically — the property
    every calibration claim in EXPERIMENTS.md relies on."""

    def test_cascade_experiment_replays_identically(self):
        a = cascade_latency(NCoSEDManager, 6, LockMode.SHARED, seed=3)
        b = cascade_latency(NCoSEDManager, 6, LockMode.SHARED, seed=3)
        assert a["cascade_us"] == b["cascade_us"]
        assert a["grant_times"] == b["grant_times"]

    def test_monitor_trace_replays_identically(self):
        from repro.monitor.experiments import accuracy_trace
        a = accuracy_trace("socket-async", duration_us=50_000, seed=5)
        b = accuracy_trace("socket-async", duration_us=50_000, seed=5)
        assert a.samples == b.samples

    def test_different_seeds_differ(self):
        from repro.monitor.experiments import accuracy_trace
        a = accuracy_trace("socket-async", duration_us=50_000, seed=5)
        b = accuracy_trace("socket-async", duration_us=50_000, seed=6)
        assert a.samples != b.samples


class TestEnvironmentEdges:
    def test_run_max_events_stops_early(self):
        from repro.sim import Environment
        env = Environment()
        fired = []

        def ticker(env):
            while True:
                yield env.timeout(1.0)
                fired.append(env.now)

        env.process(ticker(env))
        env.run(max_events=10)
        assert 0 < len(fired) < 10

    def test_any_of_propagates_child_failure(self):
        from repro.sim import Environment
        env = Environment()

        def proc(env):
            bad = env.event()
            good = env.timeout(100.0)
            bad.fail(RuntimeError("child died"))
            try:
                yield env.any_of([good, bad])
            except RuntimeError as exc:
                return str(exc)

        p = env.process(proc(env))
        env.run()
        assert p.value == "child died"
