#!/usr/bin/env python
"""Dynamic reconfiguration with QoS: three services share a node pool;
a flash crowd hits the high-priority service and the manager migrates
capacity — stealing from the low-priority donor first — at a speed set
by the monitoring granularity (the paper's §6 scenario).

Run:  python examples/reconfiguration_qos.py
"""

from repro.bench import BenchTable
from repro.net import Cluster
from repro.monitor import KernelStats, RdmaSyncMonitor
from repro.reconfig import ReconfigManager, Service, burst_recovery_time


def flash_crowd_demo():
    names = ["front"] + [f"srv{i}" for i in range(6)]
    cluster = Cluster(names=names, seed=21)
    env = cluster.env
    pool = cluster.nodes[1:]
    premium = Service("premium", pool[:2], priority=3)
    standard = Service("standard", pool[2:4], priority=2)
    batch = Service("batch", pool[4:], priority=1)
    stats = {n.id: KernelStats(n) for n in pool}
    monitor = RdmaSyncMonitor(cluster.nodes[0], stats)
    manager = ReconfigManager(cluster.nodes[0],
                              [premium, standard, batch],
                              monitor=monitor, check_every_us=1_000.0,
                              sensitivity=2.0, cooldown_us=10_000.0)
    manager.start()

    def background(env, svc):
        while True:
            svc.submit(300.0)
            yield env.timeout(2_500.0)

    for svc in (premium, standard, batch):
        env.process(background(env, svc))

    def crowd(env):
        yield env.timeout(30_000.0)
        print(f"t={env.now / 1000:.1f}ms  flash crowd hits 'premium'")
        for _ in range(400):
            premium.submit(600.0)

    env.process(crowd(env))
    env.run(until=200_000.0)

    print(f"migrations ({len(manager.migrations)}):")
    for t, node_id, frm, to in manager.migrations:
        print(f"  t={t / 1000:7.1f}ms  node {node_id}: {frm} -> {to}")
    print(f"final pool: premium={len(premium.nodes)} "
          f"standard={len(standard.nodes)} batch={len(batch.nodes)}")
    donors = [frm for _t, _n, frm, _to in manager.migrations]
    if donors:
        print(f"first donor: {donors[0]!r} (lowest priority raided first)")
    print()


def granularity_comparison():
    table = BenchTable(
        "Burst responsiveness by monitoring granularity",
        ["configuration", "detection_us", "recovery_us"],
        paper_ref="paper SS6: order-of-magnitude gain")
    for name, scheme, period in (
            ("coarse socket, 25ms", "socket-async", 25_000.0),
            ("fine RDMA, 1ms", "rdma-sync", 1_000.0)):
        r = burst_recovery_time(monitor_scheme=scheme,
                                check_every_us=period,
                                burst_requests=600, seed=0)
        detect = r["detection_us"]
        table.add(name, "missed" if detect is None else round(detect),
                  round(r["recovery_us"]))
    table.show()


if __name__ == "__main__":
    flash_crowd_demo()
    granularity_comparison()
