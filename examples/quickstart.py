#!/usr/bin/env python
"""Quickstart: a simulated RDMA cluster, DDSS shared state and N-CoSED
distributed locking in ~60 lines.

Run:  python examples/quickstart.py
"""

from repro import Cluster, Coherence, DDSS, LockMode, NCoSEDManager


def main():
    # A 4-node InfiniBand-style cluster (node 0 will home the shared
    # state and the lock word).
    cluster = Cluster(n_nodes=4, seed=42)
    env = cluster.env

    # Layer 2 primitives: the data-sharing substrate and a lock manager.
    ddss = DDSS(cluster)
    dlm = NCoSEDManager(cluster, n_locks=8)

    results = []

    def worker(env, node, name):
        """Each worker appends its name to a shared, lock-protected log."""
        data = ddss.client(node)
        locks = dlm.client(node)

        # node 1 allocates the shared unit; everyone else discovers it
        # through the metadata directory by key (key 1 = first alloc)
        if name == "alice":
            key = yield data.allocate(64, coherence=Coherence.WRITE,
                                      placement=0)
            yield data.put(key, b"log:")
        else:
            yield env.timeout(200.0)  # let the allocation land
            key = 1

        for _ in range(3):
            yield locks.acquire(0, LockMode.EXCLUSIVE)
            raw = yield data.get(key)
            log = raw.rstrip(b"\x00") + f"|{name}".encode()
            yield data.put(key, log)
            yield locks.release(0)
            yield env.timeout(50.0)

        results.append((name, env.now))

    env.process(worker(env, cluster.nodes[1], "alice"))
    env.process(worker(env, cluster.nodes[2], "bob"))
    env.process(worker(env, cluster.nodes[3], "carol"))
    env.run(until=1_000_000)

    reader = ddss.client(cluster.nodes[0])

    def check(env):
        raw = yield reader.get(1)
        return raw.rstrip(b"\x00")

    p = env.process(check(env))
    env.run()

    print(f"workers finished: {[(n, f'{t:.1f}us') for n, t in results]}")
    print(f"shared log      : {p.value.decode()}")
    entries = p.value.decode().split("|")[1:]
    assert len(entries) == 9, "every locked append must be preserved"
    print("OK: 9 appends survived concurrent access (mutual exclusion)")


if __name__ == "__main__":
    main()
