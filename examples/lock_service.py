#!/usr/bin/env python
"""Distributed locking with readers and writers: compare SRSL, DQNL and
N-CoSED on a mixed shared/exclusive workload and on the paper's
cascading-unlock microbenchmark (Fig. 5).

Run:  python examples/lock_service.py
"""

from repro import Cluster, LockMode
from repro.bench import BenchTable
from repro.dlm import (
    DQNLManager,
    NCoSEDManager,
    SRSLManager,
    cascade_latency,
)


def readers_writers(scheme_cls, n_readers=6, rounds=20):
    """Readers share the lock; one writer periodically excludes them.
    Returns total completion time (µs) for the whole workload."""
    cluster = Cluster(n_nodes=n_readers + 3, seed=5)
    manager = scheme_cls(cluster, n_locks=1)

    def reader(env, client):
        for _ in range(rounds):
            yield client.acquire(0, LockMode.SHARED)
            yield env.timeout(30.0)   # read the protected state
            yield client.release(0)
            yield env.timeout(20.0)

    def writer(env, client):
        for _ in range(rounds // 4):
            yield client.acquire(0, LockMode.EXCLUSIVE)
            yield env.timeout(80.0)   # update the protected state
            yield client.release(0)
            yield env.timeout(200.0)

    procs = [cluster.env.process(reader(cluster.env,
                                        manager.client(node)))
             for node in cluster.nodes[1:1 + n_readers]]
    procs.append(cluster.env.process(
        writer(cluster.env, manager.client(cluster.nodes[-1]))))
    done = cluster.env.all_of(procs)
    cluster.env.run_until_event(done, limit=1e9)
    return cluster.env.now


def main():
    schemes = [SRSLManager, DQNLManager, NCoSEDManager]

    table = BenchTable("Readers/writers completion time (us)",
                       ["scheme", "total_us"])
    for cls in schemes:
        table.add(cls.SCHEME, round(readers_writers(cls)))
    table.show()
    print("DQNL has no shared mode, so its 'readers' serialize — the"
          " whole\nworkload takes far longer than under N-CoSED.\n")

    for mode in (LockMode.SHARED, LockMode.EXCLUSIVE):
        cascade = BenchTable(
            f"{mode.value}-lock cascade latency (us), Fig 5",
            ["waiters"] + [cls.SCHEME for cls in schemes])
        for n in (2, 8, 16):
            row = [n]
            for cls in schemes:
                row.append(round(
                    cascade_latency(cls, n, mode)["cascade_us"], 1))
            cascade.add(*row)
        cascade.show()


if __name__ == "__main__":
    main()
