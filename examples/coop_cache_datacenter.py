#!/usr/bin/env python
"""A multi-tier data-center serving a Zipf web workload under each of
the five cooperative-caching schemes (the paper's Fig. 6 scenario,
scaled down to run in seconds).

Run:  python examples/coop_cache_datacenter.py
"""

from repro.bench import BenchTable
from repro.datacenter import DataCenter


def main():
    table = BenchTable(
        "Mini data-center: 2 proxies + 2 app nodes, 32KB docs",
        ["scheme", "tps", "hit_ratio", "local", "remote", "miss",
         "unique_docs"],
    )
    for scheme in ("AC", "BCC", "CCWR", "MTACC", "HYBCC"):
        dc = DataCenter(
            n_proxies=2, n_app=2, scheme=scheme,
            n_docs=600, doc_bytes=32 * 1024,
            cache_bytes=4 * 1024 * 1024,   # each proxy caches 4 MB
            n_sessions=24, seed=7,
        )
        tps = dc.run_tps(warmup_us=80_000, measure_us=200_000)
        s = dc.scheme
        table.add(scheme, round(tps), round(s.hit_ratio(), 3),
                  s.local_hits, s.remote_hits, s.misses,
                  s.unique_docs_cached)
    table.show()
    print(
        "\nReading the table: AC duplicates hot documents on every proxy\n"
        "and misses the long tail; BCC pulls from peers over RDMA but\n"
        "still duplicates; CCWR/MTACC keep one copy cluster-wide (note\n"
        "unique_docs) and trade local for remote hits; HYBCC picks the\n"
        "duplicating path for small documents and the aggregate path for\n"
        "large ones, tracking the best scheme."
    )


if __name__ == "__main__":
    main()
