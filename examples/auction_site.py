#!/usr/bin/env python
"""An auction site on the full stack: item state in DDSS, bids under
N-CoSED locks, app servers on shared CPUs, and a flash-crowd trace with
admission control (the paper's "integrated into Apache/PHP/MySQL"
story, end to end).

Run:  python examples/auction_site.py
"""

from repro.net import Cluster
from repro.apps.auction import AuctionService
from repro.bench import BenchTable


def main():
    cluster = Cluster(n_nodes=6, seed=17)
    env = cluster.env
    service = AuctionService(cluster, n_items=5)
    app_servers = [service.app_server(n) for n in cluster.nodes[1:5]]
    log = []

    def bidder(env, app, name, item, aggressiveness):
        yield env.timeout(100.0)
        while env.now < 60_000.0:
            price, bids = yield app.browse(item)
            offer = price + aggressiveness
            result = yield app.place_bid(item, offer)
            if result.accepted:
                log.append((env.now, name, item, offer))
            yield env.timeout(700.0 + aggressiveness * 13.0)

    names = ["alice", "bob", "carol", "dave", "erin", "frank",
             "grace", "heidi"]
    for i, name in enumerate(names):
        app = app_servers[i % len(app_servers)]
        env.process(bidder(env, app, name, item=i % 5,
                           aggressiveness=10 + 7 * (i % 3)))
    env.run(until=200_000.0)

    table = BenchTable("Final auction state", ["item", "price", "bids",
                                               "winner"])
    winners = {}
    for t, name, item, offer in log:
        winners[item] = name
    for item in range(5):
        price, bids = service.true_state(item)
        table.add(item, price, bids, winners.get(item, "-"))
    table.show()

    total_accepted = sum(service.true_state(i)[1] for i in range(5))
    assert total_accepted == service.accepted_bids == len(log)
    print(f"\n{len(log)} accepted bids across "
          f"{sum(a.bids for a in app_servers)} attempts from "
          f"{len(names)} bidders on 4 app servers — no lost updates\n"
          f"(every bid serialized through the N-CoSED lock manager; "
          f"browses served\nfrom delta-coherent DDSS caches)")


if __name__ == "__main__":
    main()
