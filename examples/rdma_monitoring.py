#!/usr/bin/env python
"""Fine-grained resource monitoring: watch a loaded back-end node with
all five schemes and compare reported vs actual thread counts, then use
the monitors to drive a load balancer (the paper's Fig. 8 scenario).

Run:  python examples/rdma_monitoring.py
"""

from repro.bench import BenchTable, improvement_pct
from repro.monitor.experiments import accuracy_trace, lb_throughput


def main():
    print("1) Accuracy: |reported - actual| running threads on a churning,"
          " loaded node")
    acc = BenchTable("Monitoring accuracy",
                     ["scheme", "mean_abs_dev", "max_dev"])
    for scheme in ("socket-async", "socket-sync", "rdma-async",
                   "rdma-sync"):
        r = accuracy_trace(scheme, duration_us=150_000.0, seed=1)
        acc.add(scheme, round(r.mean_abs_deviation, 2), r.max_deviation)
    acc.show()
    print("RDMA-Sync reads the kernel's counters directly — zero"
          " deviation, zero\nback-end CPU. The socket daemons report"
          " late exactly when the node is busy.\n")

    print("2) Throughput: least-loaded dispatch driven by each monitor"
          " (alpha=0.75)")
    tput = BenchTable("Load-balanced throughput",
                      ["scheme", "tps", "vs socket-async"])
    base = lb_throughput("socket-async", 0.75, measure_us=200_000.0,
                         seed=1)
    tput.add("socket-async", round(base), "baseline")
    for scheme in ("socket-sync", "rdma-async", "rdma-sync",
                   "e-rdma-sync"):
        tps = lb_throughput(scheme, 0.75, measure_us=200_000.0, seed=1)
        tput.add(scheme, round(tps),
                 f"{improvement_pct(tps, base):+.1f}%")
    tput.show()


if __name__ == "__main__":
    main()
