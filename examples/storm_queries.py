#!/usr/bin/env python
"""STORM-style distributed SELECT queries over a partitioned record
store, with traditional socket coordination vs DDSS-backed shared state
(the paper's Fig. 3b scenario).

Run:  python examples/storm_queries.py
"""

from repro.bench import BenchTable, improvement_pct
from repro.net import Cluster
from repro.apps.storm import StormEngine


def mean_query_time(n_records, use_ddss, n_queries=8):
    cluster = Cluster(n_nodes=5, seed=3)
    engine = StormEngine(cluster, n_records=n_records,
                         use_ddss=use_ddss, seed=3)

    def workload(env):
        t0 = env.now
        for q in range(n_queries):
            count, total = yield engine.run_query(0, 2500 + 500 * q)
        return (env.now - t0) / n_queries

    p = cluster.env.process(workload(cluster.env))
    cluster.env.run_until_event(p, limit=1e10)
    return p.value


def main():
    # correctness first: both substrates compute identical answers
    cluster = Cluster(n_nodes=5, seed=3)
    engine = StormEngine(cluster, n_records=20_000, use_ddss=True, seed=3)
    ev = engine.run_query(1000, 6000)
    cluster.env.run_until_event(ev)
    count, total = ev.value
    assert (count, total) == engine.expected(1000, 6000)
    print(f"query [1000, 6000): count={count} sum={total} "
          f"(verified against direct evaluation)\n")

    table = BenchTable(
        "STORM mean query time (us), 4 storage nodes",
        ["records", "traditional", "ddss", "improvement_%"],
        paper_ref="Fig 3b: ~19% improvement with DDSS")
    for n in (1_000, 10_000, 100_000, 1_000_000):
        trad = mean_query_time(n, use_ddss=False)
        ddss = mean_query_time(n, use_ddss=True)
        table.add(n, round(trad, 1), round(ddss, 1),
                  round(improvement_pct(trad, ddss), 1))
    table.show()
    print("\nCoordination (metadata exchange, dispatch, result"
          " collection) dominates\nsmall datasets; the scan dominates"
          " large ones, so the DDSS advantage\nshrinks as record counts"
          " grow — the paper's ~19% sits mid-sweep.")


if __name__ == "__main__":
    main()
