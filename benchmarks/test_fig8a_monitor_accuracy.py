"""Fig. 8a — accuracy of reported load (thread-count deviation).

Paper claim: RDMA-based schemes report very small or no deviation from
the actual number of threads on the (loaded) back-end node; socket-based
schemes deviate because their daemons are starved and their data stale.
"""

import os

from repro.bench import BenchTable
from repro.monitor.experiments import accuracy_trace

from conftest import run_once

SCHEMES = ["socket-async", "socket-sync", "rdma-async", "rdma-sync"]


def build_table() -> BenchTable:
    table = BenchTable(
        "Thread-count deviation |reported - actual|",
        ["scheme", "mean_abs_dev", "max_dev", "samples"],
        paper_ref="Fig 8a: RDMA schemes show little or no deviation")
    for scheme in SCHEMES:
        r = accuracy_trace(scheme, duration_us=400_000.0,
                           sample_every_us=2_000.0, seed=0)
        table.add(scheme, round(r.mean_abs_deviation, 2),
                  r.max_deviation, len(r.samples))
    return table


def test_fig8a_monitor_accuracy(benchmark, results_dir):
    table = run_once(benchmark, build_table)
    table.show()
    table.save_json(os.path.join(results_dir, "fig8a.json"))
    mad = {row[0]: row[1] for row in table.rows}
    assert mad["rdma-sync"] == 0.0
    assert mad["rdma-async"] < mad["socket-async"]
    assert mad["socket-sync"] > 0.0
    assert mad["socket-async"] > mad["rdma-sync"]
