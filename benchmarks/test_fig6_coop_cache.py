"""Fig. 6 — data-center throughput (TPS) for the five caching schemes.

Grid: file sizes {8k, 16k, 32k, 64k} x proxy counts {2, 8}.
Paper claims: advanced schemes (CCWR/MTACC/HYBCC) up to ~35% over the
simple RDMA cooperative cache (BCC) and ~1.8x+ over plain Apache-style
caching (AC), with the advantage growing with file size, working-set
size and proxy count; HYBCC tracks the best scheme everywhere.
"""

import os

from repro.bench import BenchTable
from repro.datacenter import DataCenter

from conftest import run_once

SIZES = [8_192, 16_384, 32_768, 65_536]
SCHEMES = ["AC", "BCC", "CCWR", "MTACC", "HYBCC"]
N_DOCS = 1_200
CACHE_BYTES = 8 * 1024 * 1024
MEASURE_US = 150_000.0
WARMUP_US = 100_000.0


def tps_cell(scheme: str, size: int, n_proxies: int) -> float:
    dc = DataCenter(n_proxies=n_proxies, n_app=2, scheme=scheme,
                    n_docs=N_DOCS, doc_bytes=size,
                    cache_bytes=CACHE_BYTES,
                    n_sessions=24 * n_proxies, seed=1)
    return dc.run_tps(warmup_us=WARMUP_US, measure_us=MEASURE_US)


def build_tables():
    tables = {}
    for n_proxies, ref in ((2, "Fig 6a"), (8, "Fig 6b")):
        table = BenchTable(
            f"Data-center throughput (TPS), {n_proxies} proxy nodes",
            ["file_size"] + SCHEMES,
            paper_ref=f"{ref}: AC < BCC < advanced; HYBCC tracks best")
        for size in SIZES:
            row = [f"{size // 1024}k"]
            for scheme in SCHEMES:
                row.append(round(tps_cell(scheme, size, n_proxies)))
            table.add(*row)
        tables[n_proxies] = table
    return tables


def test_fig6_coop_cache(benchmark, results_dir):
    tables = run_once(benchmark, build_tables)
    for n_proxies, table in tables.items():
        table.show()
        table.save_json(os.path.join(
            results_dir, f"fig6_{n_proxies}proxies.json"))

    def cells(n_proxies, size_idx):
        return dict(zip(SCHEMES, tables[n_proxies].rows[size_idx][1:]))

    # large files, 8 proxies: the aggregate schemes dominate
    c = cells(8, len(SIZES) - 1)
    assert c["CCWR"] > 1.3 * c["BCC"]
    assert c["HYBCC"] > 1.8 * c["AC"]
    # cooperation always beats no cooperation at 8 proxies
    for idx in range(len(SIZES)):
        c = cells(8, idx)
        assert max(c.values()) > 1.5 * c["AC"]
    # HYBCC tracks the best scheme within 25% everywhere
    for n_proxies in (2, 8):
        for idx in range(len(SIZES)):
            c = cells(n_proxies, idx)
            assert c["HYBCC"] > 0.75 * max(c.values()), (n_proxies, idx, c)
