"""Ablations over the design choices the reproduction had to make.

Not paper figures — these justify knobs that the paper leaves implicit:

* HYBCC's small/large threshold (where duplication stops paying),
* the async monitoring period (staleness vs. traffic),
* the DDSS spin-lock backoff (latency vs. wasted atomics).
"""

import os

from repro.bench import BenchTable
from repro.net import Cluster
from repro.cache import HybridCache
from repro.datacenter import DataCenter
from repro.ddss import DDSS, Coherence
from repro.monitor.experiments import accuracy_trace

from conftest import run_once


def hybcc_threshold_sweep() -> BenchTable:
    """TPS at one mid-size grid point as the HYBCC threshold moves."""
    table = BenchTable(
        "HYBCC threshold ablation (16KB docs, 2 proxies)",
        ["threshold", "tps"],
        paper_ref="design choice: duplication/capacity crossover")
    from repro.cache import schemes as schemes_mod

    for threshold in (4_096, 8_192, 16_384, 32_768):
        class Tuned(HybridCache):
            def __init__(self, proxies, fileset, capacity,
                         extra_nodes=(), threshold=threshold):
                super().__init__(proxies, fileset, capacity,
                                 extra_nodes=extra_nodes,
                                 threshold=threshold)

        original = schemes_mod.SCHEMES["HYBCC"]
        schemes_mod.SCHEMES["HYBCC"] = Tuned
        try:
            dc = DataCenter(n_proxies=2, n_app=2, scheme="HYBCC",
                            n_docs=1_200, doc_bytes=16_384,
                            cache_bytes=8 * 1024 * 1024,
                            n_sessions=48, seed=1)
            tps = dc.run_tps(warmup_us=80_000, measure_us=120_000)
        finally:
            schemes_mod.SCHEMES["HYBCC"] = original
        table.add(threshold, round(tps))
    return table


def monitor_period_sweep() -> BenchTable:
    """RDMA-async accuracy as the poll period grows."""
    table = BenchTable(
        "RDMA-async poll-period ablation",
        ["period_us", "mean_abs_dev"],
        paper_ref="design choice: millisecond-granularity polling")
    for period in (500.0, 1_000.0, 5_000.0, 20_000.0):
        r = accuracy_trace("rdma-async", duration_us=200_000.0,
                           seed=0, period_us=period)
        table.add(int(period), round(r.mean_abs_deviation, 2))
    return table


def lock_backoff_sweep() -> BenchTable:
    """DDSS unit-lock acquisition under contention vs backoff cap."""
    table = BenchTable(
        "DDSS spin-lock backoff ablation (4 contenders)",
        ["backoff_cap_us", "makespan_us", "atomics"],
        paper_ref="design choice: exponential backoff on CAS failure")
    import repro.ddss.client as client_mod

    for cap in (5.0, 50.0, 400.0):
        original = client_mod._BACKOFF
        client_mod._BACKOFF = (2.0, 2.0, cap)
        try:
            cluster = Cluster(n_nodes=5, seed=0)
            ddss = DDSS(cluster)
            key_holder = {}

            def setup(env):
                c = ddss.client(cluster.nodes[0])
                key_holder["key"] = yield c.allocate(
                    16, coherence=Coherence.NULL, placement=0)

            p = cluster.env.process(setup(cluster.env))
            cluster.env.run_until_event(p)

            def contender(env, node):
                c = ddss.client(node)
                for _ in range(5):
                    yield c.acquire(key_holder["key"])
                    yield env.timeout(30.0)
                    yield c.release(key_holder["key"])

            procs = [cluster.env.process(contender(cluster.env, n))
                     for n in cluster.nodes[1:]]
            done = cluster.env.all_of(procs)
            cluster.env.run_until_event(done, limit=1e9)
            makespan = cluster.env.now
            atomics = sum(n.nic.atomics for n in cluster.nodes)
        finally:
            client_mod._BACKOFF = original
        table.add(int(cap), round(makespan), atomics)
    return table


def test_ablation_hybcc_threshold(benchmark, results_dir):
    table = run_once(benchmark, hybcc_threshold_sweep)
    table.show()
    table.save_json(os.path.join(results_dir, "ablation_hybcc.json"))
    tps = {row[0]: row[1] for row in table.rows}
    # at 16KB docs the aggregate path must win: thresholds below the
    # doc size beat thresholds at/above it
    assert tps[8_192] > tps[32_768]


def test_ablation_monitor_period(benchmark, results_dir):
    table = run_once(benchmark, monitor_period_sweep)
    table.show()
    table.save_json(os.path.join(results_dir, "ablation_period.json"))
    dev = {row[0]: row[1] for row in table.rows}
    assert dev[500] < dev[20_000]  # finer polling is more accurate


def test_ablation_lock_backoff(benchmark, results_dir):
    table = run_once(benchmark, lock_backoff_sweep)
    table.show()
    table.save_json(os.path.join(results_dir, "ablation_backoff.json"))
    rows = {row[0]: row for row in table.rows}
    # aggressive spinning issues more atomics than patient backoff
    assert rows[5][2] > rows[400][2]
