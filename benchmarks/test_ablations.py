"""Ablations over the design choices the reproduction had to make.

Not paper figures — these justify knobs that the paper leaves implicit:

* HYBCC's small/large threshold (where duplication stops paying),
* the async monitoring period (staleness vs. traffic),
* the DDSS spin-lock backoff (latency vs. wasted atomics).

Since PR 4 each sweep dispatches through :mod:`repro.lab`: the grid is
a packaged :class:`~repro.lab.Sweep`, the per-point bodies live in
:mod:`repro.lab.scenarios`, and the tables are folded from the run
records by the lab merge step.  The pytest wrappers run serial
(``workers=0``) into the shared on-disk store, so an earlier
``repro lab run ablation-* --workers N`` pre-populates them and the
bench here only verifies + renders.
"""

import os

from repro.lab import Runner, merge_tables, packaged_sweep, store_for

from conftest import run_once


def _run_sweep(name: str, results_root: str):
    sweep = packaged_sweep(name)
    store = store_for(name, root=os.path.join(results_root, "lab"))
    runner = Runner(sweep, store, workers=0)
    report = runner.run()
    assert not report["failed"], report["failures"]
    return merge_tables(sweep, store)[0]


def test_ablation_hybcc_threshold(benchmark, results_dir):
    table = run_once(benchmark, lambda: _run_sweep("ablation-hybcc",
                                                   results_dir))
    table.show()
    table.save_json(os.path.join(results_dir, "ablation_hybcc.json"))
    tps = {row[0]: row[1] for row in table.rows}
    # at 16KB docs the aggregate path must win: thresholds below the
    # doc size beat thresholds at/above it
    assert tps[8_192] > tps[32_768]


def test_ablation_monitor_period(benchmark, results_dir):
    table = run_once(benchmark, lambda: _run_sweep("ablation-period",
                                                   results_dir))
    table.show()
    table.save_json(os.path.join(results_dir, "ablation_period.json"))
    dev = {row[0]: row[1] for row in table.rows}
    assert dev[500] < dev[20_000]  # finer polling is more accurate


def test_ablation_lock_backoff(benchmark, results_dir):
    table = run_once(benchmark, lambda: _run_sweep("ablation-backoff",
                                                   results_dir))
    table.show()
    table.save_json(os.path.join(results_dir, "ablation_backoff.json"))
    rows = {row[0]: row for row in table.rows}
    # aggressive spinning issues more atomics than patient backoff
    assert rows[5][2] > rows[400][2]
