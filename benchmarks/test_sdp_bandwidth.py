"""AZ-SDP evaluation (paper §3, ref [3]) — SDP-family bandwidth.

Streams back-to-back messages over BSDP (buffered copy), ZSDP
(synchronous zero copy) and AZ-SDP (asynchronous zero copy) and reports
achieved bandwidth per message size.  Expected shape: BSDP competitive
for small messages, ZSDP ahead for large ones, and AZ-SDP on top at
large sizes thanks to overlap (approaching line rate).
"""

import os

from repro.bench import BenchTable
from repro.net import Cluster, NetworkParams
from repro.transport import (
    AzSdpEndpoint,
    BufferedSdpEndpoint,
    ZeroCopySdpEndpoint,
)

from conftest import run_once

SIZES = [256, 1024, 8 * 1024, 64 * 1024, 256 * 1024]
N_MSGS = 40
ENDPOINTS = [("BSDP", BufferedSdpEndpoint),
             ("ZSDP", ZeroCopySdpEndpoint),
             ("AZ-SDP", AzSdpEndpoint)]


def stream_bandwidth(endpoint_cls, size: int) -> float:
    """Achieved MB/s for N_MSGS back-to-back messages of ``size``."""
    cluster = Cluster(n_nodes=2, params=NetworkParams.infiniband(),
                      seed=0)
    server = endpoint_cls(cluster.nodes[0])
    client = endpoint_cls(cluster.nodes[1])
    listener = server.listen(1)
    done = {}

    def rx(env):
        conn = yield listener.accept()
        for _ in range(N_MSGS):
            yield conn.recv()
        done["t_end"] = env.now

    def tx(env):
        conn = yield client.connect(0, port=1)
        done["t0"] = env.now
        for i in range(N_MSGS):
            if endpoint_cls is AzSdpEndpoint:
                yield conn.send(i, size=size, buf=f"b{i % 16}")
            else:
                yield conn.send(i, size=size)

    cluster.env.process(rx(cluster.env))
    cluster.env.process(tx(cluster.env))
    cluster.env.run()
    elapsed = done["t_end"] - done["t0"]
    return N_MSGS * size / elapsed  # bytes/us == MB/s


def build_table() -> BenchTable:
    table = BenchTable(
        "SDP-family streaming bandwidth (MB/s)",
        ["msg_bytes"] + [name for name, _ in ENDPOINTS],
        paper_ref="AZ-SDP (ref [3]): async zero copy wins at large sizes")
    for size in SIZES:
        row = [size]
        for _name, cls in ENDPOINTS:
            row.append(round(stream_bandwidth(cls, size), 1))
        table.add(*row)
    return table


def test_sdp_bandwidth(benchmark, results_dir):
    table = run_once(benchmark, build_table)
    table.show()
    table.save_json(os.path.join(results_dir, "sdp_bandwidth.json"))
    by_size = {row[0]: dict(zip([n for n, _ in ENDPOINTS], row[1:]))
               for row in table.rows}
    big = by_size[256 * 1024]
    # asynchronous zero copy dominates at large message sizes
    assert big["AZ-SDP"] >= big["ZSDP"]
    assert big["AZ-SDP"] > big["BSDP"]
    # and approaches line rate (900 MB/s)
    assert big["AZ-SDP"] > 0.7 * 900.0
    # buffered copy holds its own at small sizes
    small = by_size[256]
    assert small["BSDP"] > small["ZSDP"]
