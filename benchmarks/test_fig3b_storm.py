"""Fig. 3b — STORM query execution time, traditional vs DDSS-backed.

Paper claim: ~19% improvement for distributed STORM with DDSS over the
traditional (socket-coordinated) implementation, across record counts.
"""

import os

from repro.bench import BenchTable, improvement_pct
from repro.net import Cluster
from repro.apps.storm import StormEngine

from conftest import run_once

RECORD_COUNTS = [1_000, 10_000, 100_000, 1_000_000]
N_QUERIES = 8


def mean_query_time(n_records: int, use_ddss: bool) -> float:
    cluster = Cluster(n_nodes=5, seed=3)
    engine = StormEngine(cluster, n_records=n_records,
                         use_ddss=use_ddss, seed=3)

    def workload(env):
        t0 = env.now
        for q in range(N_QUERIES):
            count, total = yield engine.run_query(0, 2_000 + 700 * q)
        return (env.now - t0) / N_QUERIES

    p = cluster.env.process(workload(cluster.env))
    cluster.env.run_until_event(p, limit=1e10)
    return p.value


def build_table() -> BenchTable:
    table = BenchTable(
        "STORM query execution time (us/query)",
        ["records", "traditional", "storm_ddss", "improvement_%"],
        paper_ref="Fig 3b: ~19% improvement with DDSS")
    for n in RECORD_COUNTS:
        trad = mean_query_time(n, use_ddss=False)
        ddss = mean_query_time(n, use_ddss=True)
        table.add(n, round(trad, 1), round(ddss, 1),
                  round(improvement_pct(trad, ddss), 1))
    return table


def test_fig3b_storm(benchmark, results_dir):
    table = run_once(benchmark, build_table)
    table.show()
    table.save_json(os.path.join(results_dir, "fig3b.json"))
    # DDSS coordination must win, with the edge shrinking as the scan
    # starts to dominate (largest record count)
    improvements = [row[3] for row in table.rows]
    assert all(imp > 0 for imp in improvements[:-1]), improvements
    assert improvements[0] > improvements[-1]
    # the paper's ~19% band should be crossed somewhere in the sweep
    assert any(imp >= 10.0 for imp in improvements), improvements
