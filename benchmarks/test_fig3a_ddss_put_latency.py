"""Fig. 3a — DDSS put() latency per coherence model vs message size.

Paper claim: for all coherence models the 1-byte put latency stays
around/below ~55 µs, with NULL/READ cheapest and the locking models
(WRITE/STRICT) most expensive.
"""

import os

from repro.bench import BenchTable
from repro.net import Cluster
from repro.ddss import DDSS, Coherence

from conftest import run_once

SIZES = [1, 64, 256, 1024, 4096]
MODELS = [Coherence.NULL, Coherence.READ, Coherence.WRITE,
          Coherence.STRICT, Coherence.VERSION, Coherence.DELTA]


def put_latency(model: Coherence, size: int, iters: int = 20) -> float:
    cluster = Cluster(n_nodes=4, seed=1)
    ddss = DDSS(cluster, segment_bytes=256 * 1024)
    client = ddss.client(cluster.nodes[1])
    payload = b"\xab" * size

    def app(env):
        # fixed remote home so placement does not confound the sweep
        key = yield client.allocate(size + 8, coherence=model,
                                    placement=3)
        t0 = env.now
        for _ in range(iters):
            yield client.put(key, payload)
        return (env.now - t0) / iters

    p = cluster.env.process(app(cluster.env))
    cluster.env.run_until_event(p)
    return p.value


def build_table() -> BenchTable:
    table = BenchTable(
        "DDSS put() latency (us) by coherence model",
        ["size_bytes"] + [m.value for m in MODELS],
        paper_ref="Fig 3a: all models <= ~55us at 1 byte")
    for size in SIZES:
        row = [size]
        for model in MODELS:
            row.append(round(put_latency(model, size), 2))
        table.add(*row)
    return table


def test_fig3a_ddss_put_latency(benchmark, results_dir):
    table = run_once(benchmark, build_table)
    table.show()
    table.save_json(os.path.join(results_dir, "fig3a.json"))
    # shape assertions mirroring the paper
    one_byte = table.rows[0][1:]
    assert all(lat <= 55.0 for lat in one_byte), one_byte
    by_model = dict(zip([m.value for m in MODELS], one_byte))
    assert by_model["null"] <= by_model["version"] <= by_model["strict"]
