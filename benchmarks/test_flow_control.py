"""Packetized vs credit-based flow control (paper §6).

Paper claim: managing the receiver's buffers from the sender over RDMA
(packing messages tightly) yields close to an order-of-magnitude
bandwidth improvement for some (small) message sizes, because the
credit scheme burns one whole preposted buffer per message.
"""

import os

from repro.bench import BenchTable
from repro.net import Cluster, NetworkParams
from repro.transport import (
    CreditFlowSender,
    FlowReceiver,
    PacketizedFlowSender,
)

from conftest import run_once

SIZES = [1, 64, 512, 4_096, 8_192]
N_MSGS = 400
NBUFS = 8
BUF_BYTES = 8_192


def stream(sender_cls, size: int) -> float:
    cluster = Cluster(n_nodes=2, params=NetworkParams.infiniband(),
                      seed=0)
    rx = FlowReceiver(cluster.nodes[1], nbufs=NBUFS, buf_bytes=BUF_BYTES)
    tx = sender_cls(cluster.nodes[0], rx)
    p = cluster.env.process(tx.stream(N_MSGS, size))
    cluster.env.run_until_event(p, limit=1e10)
    return p.value  # bytes/us == MB/s


def build_table() -> BenchTable:
    table = BenchTable(
        "Flow-control bandwidth (MB/s), 8 x 8KB preposted buffers",
        ["msg_bytes", "credit", "packetized", "speedup"],
        paper_ref="paper SS6: ~order of magnitude for small messages")
    for size in SIZES:
        credit = stream(CreditFlowSender, size)
        packed = stream(PacketizedFlowSender, size)
        table.add(size, round(credit, 2), round(packed, 2),
                  round(packed / credit, 1))
    return table


def test_flow_control(benchmark, results_dir):
    table = run_once(benchmark, build_table)
    table.show()
    table.save_json(os.path.join(results_dir, "flow_control.json"))
    speedups = {row[0]: row[3] for row in table.rows}
    # order-of-magnitude class gain for tiny messages
    assert speedups[1] > 8.0, speedups
    assert speedups[64] > 4.0, speedups
    # schemes converge once a message fills a whole buffer
    assert 0.8 < speedups[8_192] < 1.3, speedups
