"""Integrated evaluation: reconfiguration x cooperative caching (§6).

The paper's discussion section warns that "blindly reallocating
resources might have negative impacts on the proposed caching schemes
due to cache corruption" and calls for an integrated evaluation.  This
bench builds it: a CCWR data-center loses one proxy to reconfiguration
mid-run (its memory is repurposed by the service that received the
node).

* **naive** reallocation just wipes the node's cache: the directory
  keeps naming it as holder, so subsequent lookups burn stale probes
  and fall through to the backend.
* **cache-aware** reallocation first migrates the node's cached
  documents to the surviving proxies (RDMA pushes) and updates the
  directory, then hands the node over.

Measured: post-event throughput and stale-probe count.
"""

import os

from repro.bench import BenchTable
from repro.datacenter import DataCenter

from conftest import run_once

EVENT_US = 250_000.0
MEASURE_US = 80_000.0


def run_scenario(aware: bool, event: bool = True):
    # sized so the two survivors can absorb the victim's content: the
    # aware strategy then loses nothing, while blind reallocation
    # refetches every document the victim held even though cluster
    # memory for all of them exists
    dc = DataCenter(n_proxies=3, n_app=2, scheme="CCWR",
                    n_docs=300, doc_bytes=16 * 1024,
                    cache_bytes=3 * 1024 * 1024, n_sessions=24, seed=8)
    scheme = dc.scheme
    victim = dc.proxy_nodes[-1]
    survivors = [n for n in dc.proxy_nodes if n is not victim]

    def reallocate(env):
        yield env.timeout(EVENT_US)
        # stop routing new requests to the victim, then hand it over —
        # with or without migrating its cache + directory shard
        dc.clients.proxies[:] = dc.servers[:-1]
        yield from scheme.retire_node(victim, survivors[0], migrate=aware)

    if event:
        dc.env.process(reallocate(dc.env))
    dc.clients.start()
    # warm up to the event, then measure the transient *right after* it:
    # that is where blind reallocation hurts (stale directory hints, a
    # burst of backend misses) before the cache self-heals
    dc.env.run(until=EVENT_US + 1_000.0)
    scheme.stale_probes = 0
    miss_before = scheme.misses
    dc.metrics.start_window()
    dc.env.run(until=EVENT_US + 1_000.0 + MEASURE_US)
    return (dc.metrics.tps(), scheme.stale_probes,
            scheme.misses - miss_before)


def build_table() -> BenchTable:
    table = BenchTable(
        "Reconfiguration x caching: transient after reallocation",
        ["strategy", "tps", "stale_probes", "backend_misses"],
        paper_ref="paper SS6: integrated evaluation / cache corruption")
    tps, stale, misses = run_scenario(False, event=False)
    table.add("control (no reallocation)", round(tps), stale, misses)
    for name, aware in (("naive (blind reallocation)", False),
                        ("cache-aware (drain + retarget)", True)):
        tps, stale, misses = run_scenario(aware)
        table.add(name, round(tps), stale, misses)
    return table


def test_integrated_reconfig_cache(benchmark, results_dir):
    table = run_once(benchmark, build_table)
    table.show()
    table.save_json(os.path.join(results_dir, "integrated.json"))
    rows = {row[0].split()[0]: row for row in table.rows}
    base_miss = rows["control"][3]
    naive_tps, _naive_stale, naive_miss = rows["naive"][1:]
    aware_tps, _aware_stale, aware_miss = rows["cache-aware"][1:]
    # blind reallocation corrupts the cache: over the cold-tail base
    # rate, it burns a burst of extra backend misses that the
    # drain-and-retarget strategy mostly avoids, and throughput dips
    naive_extra = naive_miss - base_miss
    aware_extra = aware_miss - base_miss
    assert naive_extra > 3 * max(aware_extra, 1), (naive_extra,
                                                   aware_extra)
    assert aware_tps > naive_tps
