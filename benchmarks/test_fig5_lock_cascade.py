"""Fig. 5 — lock cascading latency vs number of waiting processes.

Paper claims: (a) shared cascade — N-CoSED grants all shared waiters at
once, DQNL serializes them (up to ~317% worse at 16 nodes); (b)
exclusive cascade — N-CoSED ≈ DQNL, both well ahead of the two-sided
SRSL server (~39%+).
"""

import os

from repro.bench import BenchTable
from repro.dlm import (
    DQNLManager,
    LockMode,
    NCoSEDManager,
    SRSLManager,
    cascade_latency,
)

from conftest import run_once

WAITERS = [1, 2, 4, 8, 16]
SCHEMES = [SRSLManager, DQNLManager, NCoSEDManager]


def build_tables():
    tables = {}
    for mode, ref in ((LockMode.SHARED, "Fig 5a"),
                      (LockMode.EXCLUSIVE, "Fig 5b")):
        table = BenchTable(
            f"{mode.value}-lock cascading latency (us)",
            ["waiters", "SRSL", "DQNL", "N-CoSED"],
            paper_ref=f"{ref}: cascade from one release to last grant")
        for n in WAITERS:
            row = [n]
            for cls in SCHEMES:
                result = cascade_latency(cls, n, mode, seed=0)
                row.append(round(result["cascade_us"], 1))
            table.add(*row)
        tables[mode] = table
    return tables


def test_fig5_lock_cascade(benchmark, results_dir):
    tables = run_once(benchmark, build_tables)
    for mode, table in tables.items():
        table.show()
        table.save_json(os.path.join(
            results_dir, f"fig5_{mode.value}.json"))

    shared = {row[0]: row[1:] for row in tables[LockMode.SHARED].rows}
    exclusive = {row[0]: row[1:]
                 for row in tables[LockMode.EXCLUSIVE].rows}

    # shared @16: N-CoSED far ahead of DQNL (paper: up to ~317%)
    srsl, dqnl, ncosed = shared[16]
    assert dqnl / ncosed > 3.0, shared
    assert srsl / ncosed > 1.0, shared
    # N-CoSED shared cascade is ~flat: 16 waiters cost < 2x 1 waiter
    assert shared[16][2] < 2.0 * shared[1][2]
    # exclusive: one-sided schemes beat the message-based server
    srsl, dqnl, ncosed = exclusive[16]
    assert srsl / ncosed > 1.3, exclusive
    assert abs(dqnl - ncosed) / ncosed < 0.2
