"""Shared helpers for the figure-reproduction benchmarks.

Every bench runs its experiment exactly once through
``benchmark.pedantic(..., rounds=1)`` — the interesting output is the
paper-style table printed to stdout (captured into ``bench_output.txt``
by the top-level run command), not the wall-clock statistics.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def pytest_terminal_summary(terminalreporter):
    """Replay every shown table after the run (output capture hides the
    in-test prints of passing tests)."""
    from repro.bench.harness import RENDERED

    if not RENDERED:
        return
    terminalreporter.section("paper-figure tables")
    for rendered in RENDERED:
        terminalreporter.write_line("")
        terminalreporter.write_line(rendered)
