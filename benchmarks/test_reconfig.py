"""Fine- vs coarse-grained reconfiguration (paper §6).

Paper claim: a fine-grained reconfiguration module driven by RDMA
monitoring reacts to load shifts an order of magnitude faster than the
coarse-grained (socket/period-bound) design.
"""

import os

from repro.bench import BenchTable
from repro.reconfig import burst_recovery_time

from conftest import run_once

CONFIGS = [
    ("coarse (socket-async, 25ms)", "socket-async", 25_000.0),
    ("medium (rdma-async, 5ms)", "rdma-async", 5_000.0),
    ("fine (rdma-sync, 1ms)", "rdma-sync", 1_000.0),
]


def build_table() -> BenchTable:
    table = BenchTable(
        "Burst detection / recovery by monitoring granularity",
        ["configuration", "detection_us", "recovery_us", "migrations"],
        paper_ref="paper SS6: order-of-magnitude responsiveness gain")
    for name, scheme, period in CONFIGS:
        r = burst_recovery_time(monitor_scheme=scheme,
                                check_every_us=period,
                                burst_requests=600, seed=0)
        detect = r["detection_us"]
        table.add(name,
                  "missed" if detect is None else round(detect),
                  round(r["recovery_us"]),
                  len(r["migrations"]))
    return table


def test_reconfig_granularity(benchmark, results_dir):
    table = run_once(benchmark, build_table)
    table.show()
    table.save_json(os.path.join(results_dir, "reconfig.json"))
    rows = {row[0]: row for row in table.rows}
    coarse = rows[CONFIGS[0][0]][1]
    fine = rows[CONFIGS[2][0]][1]
    assert fine != "missed"
    assert coarse == "missed" or coarse > 8 * fine
