"""Fig. 8b — data-center throughput improvement per monitoring scheme.

Zipf alpha sweep {0.9, 0.75, 0.5, 0.25}; improvement is relative to the
Socket-Async baseline.  Paper claim: close to 35% improvement for the
RDMA-based schemes over the sockets-based implementation.
"""

import os

from repro.bench import BenchTable, improvement_pct
from repro.monitor.experiments import lb_throughput

from conftest import run_once

ALPHAS = [0.9, 0.75, 0.5, 0.25]
SCHEMES = ["socket-sync", "rdma-async", "rdma-sync", "e-rdma-sync"]
BASELINE = "socket-async"


def build_table() -> BenchTable:
    table = BenchTable(
        "Throughput improvement over Socket-Async (%)",
        ["alpha", "baseline_tps"] + SCHEMES,
        paper_ref="Fig 8b: ~35% for RDMA-based schemes")
    for alpha in ALPHAS:
        base = lb_throughput(BASELINE, alpha, measure_us=300_000.0,
                             seed=0)
        row = [alpha, round(base)]
        for scheme in SCHEMES:
            tps = lb_throughput(scheme, alpha, measure_us=300_000.0,
                                seed=0)
            row.append(round(improvement_pct(tps, base), 1))
        table.add(*row)
    return table


def test_fig8b_monitor_throughput(benchmark, results_dir):
    table = run_once(benchmark, build_table)
    table.show()
    table.save_json(os.path.join(results_dir, "fig8b.json"))
    for row in table.rows:
        impr = dict(zip(SCHEMES, row[2:]))
        # RDMA-based schemes improve over the socket baseline...
        assert impr["rdma-sync"] > 10.0, row
        assert impr["rdma-async"] > 5.0, row
        # ...and the best of them lands in the paper's ~35% band for at
        # least part of the sweep (checked across rows below)
    best = max(row[2:][SCHEMES.index("rdma-sync")]
               for row in table.rows)
    assert best > 20.0
